"""The runtime connection sanitizer (``CRIMSON_SANITIZE=1``).

Two promises under test: a pooled reader used from a thread that never
checked it out raises a typed :class:`StorageError` (instead of racing
another thread's cursor), and the warm ``lca`` / ``consensus`` paths
execute exactly zero SQL statements — asserted with
:func:`repro.storage.sanitize.statement_budget`, not inferred from
timing.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import StorageError
from repro.storage import sanitize
from repro.storage.api import AnalyticsRequest, QueryRequest
from repro.storage.database import CrimsonDatabase
from repro.storage.sanitize import (
    SanitizedConnection,
    maybe_sanitize,
    statement_budget,
    total_statements,
)
from repro.storage.store import CrimsonStore
from repro.trees.build import sample_tree


def run_in_thread(fn):
    """Run ``fn`` on a fresh thread; return {"value": ...} or {"error": ...}."""
    outcome = {}

    def target():
        try:
            outcome["value"] = fn()
        except BaseException as error:  # noqa: BLE001 - relayed to the test
            outcome["error"] = error

    worker = threading.Thread(target=target)
    worker.start()
    worker.join()
    return outcome


class FakeConnection:
    """Stand-in for sqlite3.Connection: records calls, needs no database."""

    def __init__(self):
        self.calls = []
        self.row_factory = None

    def execute(self, sql, parameters=()):
        self.calls.append(("execute", sql))
        return "cursor"

    def executemany(self, sql, rows):
        self.calls.append(("executemany", sql))

    def executescript(self, script):
        self.calls.append(("executescript", script))

    def close(self):
        self.calls.append(("close", None))


class TestProxyUnit:
    def test_disabled_sanitizer_is_an_identity(self, monkeypatch):
        monkeypatch.delenv("CRIMSON_SANITIZE", raising=False)
        inner = FakeConnection()
        assert maybe_sanitize(inner, "x.db", read_only=False) is inner

    def test_enabled_sanitizer_wraps(self, sanitized):
        inner = FakeConnection()
        proxy = maybe_sanitize(inner, "x.db", read_only=True)
        assert isinstance(proxy, SanitizedConnection)

    def test_statements_are_counted_and_delegated(self):
        inner = FakeConnection()
        proxy = SanitizedConnection(inner, "x.db", affine=False)
        before = total_statements()
        assert proxy.execute("SELECT 1") == "cursor"
        proxy.executemany("INSERT", [(1,)])
        proxy.executescript("BEGIN; COMMIT")
        assert total_statements() - before == 3
        assert [name for name, _ in inner.calls] == [
            "execute", "executemany", "executescript",
        ]

    def test_attribute_traffic_passes_through(self):
        inner = FakeConnection()
        proxy = SanitizedConnection(inner, "x.db", affine=False)
        proxy.row_factory = dict
        assert inner.row_factory is dict
        proxy.close()
        assert ("close", None) in inner.calls

    def test_non_affine_proxy_allows_any_thread(self):
        proxy = SanitizedConnection(FakeConnection(), "x.db", affine=False)
        outcome = run_in_thread(lambda: proxy.execute("SELECT 1"))
        assert outcome == {"value": "cursor"}

    def test_affine_proxy_rejects_unbound_threads(self):
        proxy = SanitizedConnection(FakeConnection(), "x.db", affine=True)
        assert proxy.execute("SELECT 1") == "cursor"  # creator is bound
        outcome = run_in_thread(lambda: proxy.execute("SELECT 1"))
        assert isinstance(outcome["error"], StorageError)
        assert "checked it out" in str(outcome["error"])

    def test_bind_thread_legitimizes_a_handoff(self):
        proxy = SanitizedConnection(FakeConnection(), "x.db", affine=True)

        def bound_use():
            proxy.bind_thread()
            return proxy.execute("SELECT 1")

        assert run_in_thread(bound_use) == {"value": "cursor"}

    def test_statement_budget_trips_on_the_offending_statement(self):
        proxy = SanitizedConnection(FakeConnection(), "x.db", affine=False)
        with statement_budget(2) as budget:
            proxy.execute("SELECT 1")
            proxy.execute("SELECT 2")
            assert budget.spent == 2
            with pytest.raises(StorageError, match="statement budget"):
                proxy.execute("SELECT 3")
        # The budget is popped: later statements are free again.
        proxy.execute("SELECT 4")


class TestPooledReaderAffinity:
    def test_wrong_thread_use_raises_typed_storage_error(
        self, sanitized, tmp_path
    ):
        path = str(tmp_path / "affinity.db")
        with CrimsonStore.open(path, readers=2) as store:
            store.trees.store_tree(sample_tree(), f=2)
            mine = store.reader_database()
            # A second thread checks out its own reader (round-robin
            # slot 2 of 2) and leaks the handle back to this thread.
            outcome = run_in_thread(store.reader_database)
            leaked = outcome["value"]
            assert leaked is not mine
            with pytest.raises(StorageError, match="checked it out"):
                leaked.query_one("SELECT 1")
            # The properly checked-out reader still works here...
            assert mine.query_one("SELECT 1") is not None
            # ...and the leaked one still works on a thread that binds
            # it the legitimate way (a fresh checkout).
            assert "error" not in run_in_thread(
                lambda: store.reader_database().query_one("SELECT 1")
            )

    def test_unsanitized_runs_are_unaffected(self, tmp_path, monkeypatch):
        monkeypatch.delenv("CRIMSON_SANITIZE", raising=False)
        path = str(tmp_path / "plain.db")
        with CrimsonStore.open(path, readers=2) as store:
            store.trees.store_tree(sample_tree(), f=2)
            reader = store.reader_database()
            assert isinstance(reader, CrimsonDatabase)
            # bind_current_thread is a cheap no-op without the proxy.
            reader.bind_current_thread()
            assert reader.query_one("SELECT 1") is not None


class TestWarmPathBudgets:
    def test_warm_lca_and_consensus_execute_zero_statements(self, sanitized):
        with CrimsonStore.open() as store:
            store.trees.store_tree(sample_tree(), name="a", f=2)
            store.trees.store_tree(sample_tree(), name="b", f=2)
            lca = QueryRequest.lca("a", "Lla", "Syn")
            consensus = AnalyticsRequest.consensus("a", "b")
            store.query(lca)  # warm the handle's row caches
            store.analyze(consensus)
            with statement_budget(0) as budget:
                result = store.query(lca)
                outcome = store.analyze(consensus)
            assert budget.spent == 0
            assert result.node.name == "R"
            assert outcome.consensus is not None

    def test_cold_query_under_zero_budget_raises(self, sanitized):
        with CrimsonStore.open() as store:
            store.trees.store_tree(sample_tree(), f=2)
            with pytest.raises(StorageError, match="statement budget"):
                with statement_budget(0):
                    store.query(
                        QueryRequest.lca("fig1-sample", "Lla", "Syn")
                    )

    def test_budget_only_observes_sanitized_connections(self, monkeypatch):
        monkeypatch.delenv("CRIMSON_SANITIZE", raising=False)
        with CrimsonStore.open() as store:
            store.trees.store_tree(sample_tree(), f=2)
            with statement_budget(0) as budget:
                store.query(QueryRequest.lca("fig1-sample", "Lla", "Syn"))
            assert budget.spent == 0  # raw connections are invisible

    def test_total_statements_is_monotonic(self, sanitized):
        before = sanitize.total_statements()
        with CrimsonStore.open() as store:
            store.trees.store_tree(sample_tree(), f=2)
        assert sanitize.total_statements() > before
