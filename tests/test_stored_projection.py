"""Unit tests for SQL-backed projection."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.projection import project_tree
from repro.errors import QueryError
from repro.simulation.birth_death import yule_tree
from repro.storage.projection import project_stored
from repro.storage.tree_repository import TreeRepository


@pytest.fixture
def stored(db, fig1):
    return TreeRepository(db).store_tree(fig1, f=2)


class TestPaperExample:
    def test_figure2_via_sql(self, stored):
        projection = project_stored(stored, ["Bha", "Lla", "Syn"])
        lengths = sorted(
            node.length
            for node in projection.preorder()
            if node.parent is not None
        )
        assert lengths == pytest.approx([0.75, 1.5, 1.5, 2.5])
        assert projection.find("Lla").length == pytest.approx(1.5)

    def test_single_leaf(self, stored):
        projection = project_stored(stored, ["Bha"])
        assert projection.size() == 1
        assert projection.root.length == 0.0

    def test_keep_root_edge(self, stored):
        projection = project_stored(stored, ["Lla", "Spy"], keep_root_edge=True)
        assert projection.root.name == "x"
        assert projection.root.length == pytest.approx(1.25)

    def test_duplicates_collapsed(self, stored):
        projection = project_stored(stored, ["Lla", "Lla", "Spy"])
        assert sorted(projection.leaf_names()) == ["Lla", "Spy"]


class TestErrors:
    def test_empty(self, stored):
        with pytest.raises(QueryError):
            project_stored(stored, [])

    def test_unknown(self, stored):
        with pytest.raises(QueryError):
            project_stored(stored, ["ghost"])

    def test_interior(self, stored):
        with pytest.raises(QueryError):
            project_stored(stored, ["x", "Lla"])


class TestAgainstInMemory:
    def test_random_samples_agree(self, db):
        rng = np.random.default_rng(31)
        tree = yule_tree(120, rng=rng)
        handle = TreeRepository(db).store_tree(tree, name="gold", f=4)
        names = tree.leaf_names()
        draw = random.Random(8)
        for _ in range(15):
            sample = draw.sample(names, draw.randint(1, 25))
            via_sql = project_stored(handle, sample)
            in_memory = project_tree(tree, sample)
            assert via_sql.equals(in_memory, tolerance=1e-9)

    def test_interior_names_preserved(self, stored, fig1):
        via_sql = project_stored(stored, ["Lla", "Bha"])
        assert via_sql.root.name == "A"
