"""Unit tests for SQL-backed projection."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.projection import project_tree
from repro.errors import QueryError
from repro.simulation.birth_death import yule_tree
from repro.storage.projection import project_stored
from repro.storage.tree_repository import TreeRepository


@pytest.fixture
def stored(db, fig1):
    return TreeRepository(db).store_tree(fig1, f=2)


class TestPaperExample:
    def test_figure2_via_sql(self, stored):
        projection = project_stored(stored, ["Bha", "Lla", "Syn"])
        lengths = sorted(
            node.length
            for node in projection.preorder()
            if node.parent is not None
        )
        assert lengths == pytest.approx([0.75, 1.5, 1.5, 2.5])
        assert projection.find("Lla").length == pytest.approx(1.5)

    def test_single_leaf(self, stored):
        projection = project_stored(stored, ["Bha"])
        assert projection.size() == 1
        assert projection.root.length == 0.0

    def test_keep_root_edge(self, stored):
        projection = project_stored(stored, ["Lla", "Spy"], keep_root_edge=True)
        assert projection.root.name == "x"
        assert projection.root.length == pytest.approx(1.25)

    def test_duplicates_collapsed(self, stored):
        projection = project_stored(stored, ["Lla", "Lla", "Spy"])
        assert sorted(projection.leaf_names()) == ["Lla", "Spy"]


class TestErrors:
    def test_empty(self, stored):
        with pytest.raises(QueryError):
            project_stored(stored, [])

    def test_unknown(self, stored):
        with pytest.raises(QueryError):
            project_stored(stored, ["ghost"])

    def test_interior(self, stored):
        with pytest.raises(QueryError):
            project_stored(stored, ["x", "Lla"])


class TestEdgeCasesAgainstInMemory:
    """Boundary leaf sets, checked row-for-row against the in-memory
    algorithm (`repro.core.projection.project_tree`)."""

    def _assert_matches_in_memory(self, stored, tree, sample):
        via_sql = project_stored(stored, sample)
        in_memory = project_tree(tree, sample)
        assert via_sql.equals(in_memory, tolerance=1e-9)

    def test_single_leaf_equals_in_memory(self, stored, fig1):
        for name in fig1.leaf_names():
            self._assert_matches_in_memory(stored, fig1, [name])

    def test_duplicate_leaf_names_equal_in_memory(self, stored, fig1):
        self._assert_matches_in_memory(
            stored, fig1, ["Syn", "Lla", "Syn", "Lla", "Syn"]
        )

    def test_all_duplicates_of_one_leaf(self, stored, fig1):
        projection = project_stored(stored, ["Bsu", "Bsu", "Bsu"])
        assert projection.size() == 1
        assert projection.root.name == "Bsu"
        assert projection.equals(
            project_tree(fig1, ["Bsu", "Bsu", "Bsu"]), tolerance=1e-9
        )

    def test_leaves_spanning_roots_first_and_last_children(self, db):
        """The projection root must be the tree root when the sample
        straddles the root's first and last subtrees."""
        rng = np.random.default_rng(99)
        tree = yule_tree(80, rng=rng)
        handle = TreeRepository(db).store_tree(tree, name="span", f=4)
        first_child = tree.root.children[0]
        last_child = tree.root.children[-1]
        first_leaf = next(
            node.name for node in first_child.preorder() if not node.children
        )
        last_leaf = next(
            node.name
            for node in last_child.preorder()
            if not node.children
        )
        sample = [first_leaf, last_leaf]
        via_sql = project_stored(handle, sample)
        assert via_sql.equals(project_tree(tree, sample), tolerance=1e-9)
        # Spanning the outermost subtrees anchors the projection at the
        # root: its two leaves hang directly off the cloned root.
        assert sorted(via_sql.leaf_names()) == sorted(sample)
        extra_first = [
            node.name for node in first_child.preorder() if not node.children
        ][-1]
        full_span = list(dict.fromkeys([first_leaf, extra_first, last_leaf]))
        via_sql_full = project_stored(handle, full_span)
        assert via_sql_full.equals(
            project_tree(tree, full_span), tolerance=1e-9
        )

    def test_every_leaf_projects_to_whole_frontier(self, stored, fig1):
        names = fig1.leaf_names()
        via_sql = project_stored(stored, names)
        assert via_sql.equals(project_tree(fig1, names), tolerance=1e-9)
        assert sorted(via_sql.leaf_names()) == sorted(names)


class TestAgainstInMemory:
    def test_random_samples_agree(self, db):
        rng = np.random.default_rng(31)
        tree = yule_tree(120, rng=rng)
        handle = TreeRepository(db).store_tree(tree, name="gold", f=4)
        names = tree.leaf_names()
        draw = random.Random(8)
        for _ in range(15):
            sample = draw.sample(names, draw.randint(1, 25))
            via_sql = project_stored(handle, sample)
            in_memory = project_tree(tree, sample)
            assert via_sql.equals(in_memory, tolerance=1e-9)

    def test_interior_names_preserved(self, stored, fig1):
        via_sql = project_stored(stored, ["Lla", "Bha"])
        assert via_sql.root.name == "A"
