"""Unit tests for the Query Repository (history + recall/re-run)."""

from __future__ import annotations

import pytest

from repro.errors import QueryError, StorageError
from repro.storage.query_repository import QueryRepository


@pytest.fixture
def history(db):
    return QueryRepository(db)


class TestRecording:
    def test_record_and_entry(self, history):
        query_id = history.record(
            "lca", {"taxa": ["Lla", "Syn"]}, tree_name="fig1",
            duration_ms=1.5, result_summary="R",
        )
        entry = history.entry(query_id)
        assert entry.operation == "lca"
        assert entry.params == {"taxa": ["Lla", "Syn"]}
        assert entry.tree_name == "fig1"
        assert entry.duration_ms == 1.5
        assert entry.result_summary == "R"

    def test_unknown_entry_raises(self, history):
        with pytest.raises(StorageError):
            history.entry(42)

    def test_recent_ordering(self, history):
        for index in range(5):
            history.record(f"op{index}", {})
        entries = history.recent(limit=3)
        assert [entry.operation for entry in entries] == ["op4", "op3", "op2"]

    def test_recent_filter_by_tree(self, history):
        history.record("a", {}, tree_name="one")
        history.record("b", {}, tree_name="two")
        entries = history.recent(tree_name="one")
        assert [entry.operation for entry in entries] == ["a"]

    def test_clear(self, history):
        history.record("a", {})
        history.record("b", {})
        assert history.clear() == 2
        assert history.recent() == []


class TestRunAndRerun:
    def test_run_recorded_executes_and_records(self, history):
        calls = []
        history.register_operation("double", lambda value: calls.append(value) or value * 2)
        result = history.run_recorded("double", {"value": 21})
        assert result == 42
        assert calls == [21]
        entry = history.recent(limit=1)[0]
        assert entry.operation == "double"
        assert entry.duration_ms is not None

    def test_unregistered_operation_raises(self, history):
        with pytest.raises(QueryError):
            history.run_recorded("ghost", {})

    def test_rerun_recalls_params(self, history):
        seen = []
        history.register_operation("echo", lambda text: seen.append(text) or text)
        history.run_recorded("echo", {"text": "hello"})
        first_id = history.recent(limit=1)[0].query_id
        history.rerun(first_id)
        assert seen == ["hello", "hello"]

    def test_rerun_is_itself_recorded(self, history):
        history.register_operation("noop", lambda: None)
        history.run_recorded("noop", {})
        history.rerun(history.recent(limit=1)[0].query_id)
        assert len(history.recent()) == 2

    def test_custom_summarizer(self, history):
        history.register_operation("listing", lambda: list(range(100)))
        history.run_recorded(
            "listing", {}, summarize=lambda result: f"{len(result)} items"
        )
        assert history.recent(limit=1)[0].result_summary == "100 items"
