"""Unit tests for the Tree Repository and SQL-backed queries."""

from __future__ import annotations

import random

import pytest

from repro.errors import QueryError, StorageError
from repro.storage.tree_repository import TreeRepository
from repro.trees.build import balanced, caterpillar, sample_tree
from repro.trees.traversal import naive_lca


@pytest.fixture
def repo(db):
    return TreeRepository(db)


@pytest.fixture
def stored(repo, fig1):
    return repo.store_tree(fig1, f=2)


class TestStoreAndCatalogue:
    def test_store_returns_handle(self, stored):
        assert stored.info.name == "fig1-sample"
        assert stored.info.n_nodes == 8
        assert stored.info.n_leaves == 5
        assert stored.info.max_depth == 3
        assert stored.info.f == 2

    def test_store_requires_name(self, repo, fig1):
        fig1.name = None
        with pytest.raises(StorageError):
            repo.store_tree(fig1)

    def test_duplicate_name_rejected(self, repo, fig1, stored):
        with pytest.raises(StorageError):
            repo.store_tree(fig1)

    def test_info_unknown_raises(self, repo):
        with pytest.raises(StorageError):
            repo.info("ghost")

    def test_list_trees(self, repo, fig1, stored):
        repo.store_tree(balanced(3), name="balanced")
        names = [info.name for info in repo.list_trees()]
        assert names == ["balanced", "fig1-sample"]

    def test_delete_tree(self, repo, db, stored):
        repo.delete_tree("fig1-sample")
        assert repo.list_trees() == []
        for table in ("nodes", "blocks", "inodes"):
            row = db.query_one(f"SELECT COUNT(*) AS n FROM {table}")
            assert row["n"] == 0

    def test_delete_unknown_raises(self, repo):
        with pytest.raises(StorageError):
            repo.delete_tree("ghost")

    def test_open(self, repo, stored):
        handle = repo.open("fig1-sample")
        assert handle.info.tree_id == stored.info.tree_id

    def test_index_metadata_recorded(self, stored):
        assert stored.info.n_layers == 2
        assert stored.info.n_blocks == 3  # two layer-0 + one layer-1


class TestNodeAccess:
    def test_root(self, stored):
        root = stored.root()
        assert root.name == "R"
        assert root.parent_id is None
        assert root.depth == 0

    def test_node_by_name(self, stored):
        row = stored.node_by_name("Lla")
        assert row.is_leaf
        assert row.dist_from_root == pytest.approx(2.25)
        assert row.depth == 3

    def test_unknown_name_raises(self, stored):
        with pytest.raises(QueryError):
            stored.node_by_name("ghost")

    def test_unknown_id_raises(self, stored):
        with pytest.raises(QueryError):
            stored.node(999)

    def test_leaves_in_preorder(self, stored):
        assert [row.name for row in stored.leaves()] == [
            "Syn",
            "Lla",
            "Spy",
            "Bha",
            "Bsu",
        ]

    def test_leaf_names(self, stored):
        assert stored.leaf_names() == ["Syn", "Lla", "Spy", "Bha", "Bsu"]

    def test_children_in_order(self, stored):
        root = stored.root()
        children = stored.children(root.node_id)
        assert [row.name for row in children] == ["Syn", "A", "Bsu"]
        assert [row.child_order for row in children] == [1, 2, 3]

    def test_subtree_interval(self, stored):
        x = stored.node_by_name("x")
        low, high = x.subtree_interval
        assert high - low + 1 == 3  # x, Lla, Spy


class TestSqlLca:
    def test_paper_walkthrough(self, stored):
        assert stored.lca("Lla", "Syn").name == "R"
        assert stored.lca("Lla", "Spy").name == "x"

    def test_by_id(self, stored):
        lla = stored.node_by_name("Lla")
        spy = stored.node_by_name("Spy")
        assert stored.lca(lla.node_id, spy.node_id).name == "x"

    def test_matches_in_memory_on_random_trees(self, repo, random_tree_factory):
        for seed in range(4):
            tree = random_tree_factory(50, seed, name_prefix=f"s{seed}n")
            handle = repo.store_tree(tree, name=f"random-{seed}", f=2 + seed)
            nodes = list(tree.preorder())
            rng = random.Random(seed)
            for _ in range(30):
                a, b = rng.choice(nodes), rng.choice(nodes)
                expected = naive_lca(a, b)
                assert handle.lca(a.name, b.name).name == expected.name

    def test_lca_many(self, stored):
        assert stored.lca_many(["Lla", "Spy", "Bha"]).name == "A"
        assert stored.lca_many(["Lla"]).name == "Lla"

    def test_lca_many_empty_raises(self, stored):
        with pytest.raises(QueryError):
            stored.lca_many([])

    def test_is_ancestor_or_self(self, stored):
        assert stored.is_ancestor_or_self("A", "Spy")
        assert stored.is_ancestor_or_self("Spy", "Spy")
        assert not stored.is_ancestor_or_self("Spy", "A")

    def test_deep_tree_lca(self, repo):
        tree = caterpillar(300)
        handle = repo.store_tree(tree, name="deep", f=4)
        assert handle.lca("t1", "t300").depth == 0
        # t299 and t300 hang off the deepest interior node.
        assert handle.lca("t299", "t300").depth == 298


class TestCladeAndFrontier:
    def test_clade(self, stored):
        names = [row.name for row in stored.clade(["Lla", "Bha"])]
        assert names == ["A", "x", "Lla", "Spy", "Bha"]

    def test_leaves_in_subtree(self, stored):
        x = stored.node_by_name("x")
        assert [row.name for row in stored.leaves_in_subtree(x.node_id)] == [
            "Lla",
            "Spy",
        ]

    def test_count_leaves(self, stored):
        a = stored.node_by_name("A")
        assert stored.count_leaves_in_subtree(a.node_id) == 3

    def test_time_frontier_matches_paper(self, stored):
        names = {row.name for row in stored.time_frontier(1.0)}
        assert names == {"Bha", "x", "Syn", "Bsu"}

    def test_frontier_beyond_tree_is_empty(self, stored):
        assert stored.time_frontier(100.0) == []

    def test_frontier_at_zero_is_root_children(self, stored):
        names = {row.name for row in stored.time_frontier(0.0)}
        assert names == {"Syn", "A", "Bsu"}


class TestMaterialization:
    def test_fetch_tree_roundtrip(self, stored, fig1):
        assert stored.fetch_tree().to_newick() == fig1.to_newick()

    def test_fetch_subtree(self, stored):
        x = stored.node_by_name("x")
        subtree = stored.fetch_subtree(x.node_id)
        assert subtree.root.name == "x"
        assert sorted(subtree.leaf_names()) == ["Lla", "Spy"]

    def test_fetch_preserves_child_order(self, repo):
        tree = balanced(3)
        handle = repo.store_tree(tree, name="b3")
        assert handle.fetch_tree().to_newick() == tree.to_newick()
