"""Unit tests for the Node model."""

from __future__ import annotations

import pytest

from repro.errors import TreeStructureError
from repro.trees.node import Node


class TestConstruction:
    def test_defaults(self):
        node = Node()
        assert node.name is None
        assert node.length == 0.0
        assert node.parent is None
        assert node.children == []

    def test_named_with_length(self):
        node = Node("A", 2.5)
        assert node.name == "A"
        assert node.length == 2.5

    def test_length_coerced_to_float(self):
        assert isinstance(Node("A", 1).length, float)


class TestAttachment:
    def test_add_child_sets_parent(self):
        parent = Node("p")
        child = Node("c")
        parent.add_child(child)
        assert child.parent is parent
        assert parent.children == [child]

    def test_new_child_returns_child(self):
        parent = Node("p")
        child = parent.new_child("c", 1.0)
        assert child.name == "c"
        assert child.parent is parent

    def test_add_child_rejects_already_parented(self):
        a, b = Node("a"), Node("b")
        child = Node("c")
        a.add_child(child)
        with pytest.raises(TreeStructureError):
            b.add_child(child)

    def test_add_child_rejects_self(self):
        node = Node("a")
        with pytest.raises(TreeStructureError):
            node.add_child(node)

    def test_add_child_rejects_cycle(self):
        a = Node("a")
        b = a.new_child("b")
        c = b.new_child("c")
        with pytest.raises(TreeStructureError):
            c.add_child(a)

    def test_detach_removes_from_parent(self):
        parent = Node("p")
        child = parent.new_child("c")
        child.detach()
        assert child.parent is None
        assert parent.children == []

    def test_detach_root_is_noop(self):
        node = Node("a")
        assert node.detach() is node

    def test_remove_child(self):
        parent = Node("p")
        child = parent.new_child("c")
        parent.remove_child(child)
        assert parent.children == []

    def test_remove_non_child_raises(self):
        parent = Node("p")
        stranger = Node("s")
        with pytest.raises(TreeStructureError):
            parent.remove_child(stranger)


class TestPredicates:
    def test_is_leaf(self):
        parent = Node("p")
        child = parent.new_child("c")
        assert child.is_leaf
        assert not parent.is_leaf

    def test_is_root(self):
        parent = Node("p")
        child = parent.new_child("c")
        assert parent.is_root
        assert not child.is_root

    def test_child_order_is_one_based(self):
        parent = Node("p")
        first = parent.new_child("a")
        second = parent.new_child("b")
        assert first.child_order == 1
        assert second.child_order == 2

    def test_root_child_order_is_zero(self):
        assert Node("r").child_order == 0

    def test_is_ancestor_of(self):
        a = Node("a")
        b = a.new_child("b")
        c = b.new_child("c")
        assert a.is_ancestor_of(c)
        assert b.is_ancestor_of(c)
        assert not c.is_ancestor_of(a)

    def test_node_not_its_own_ancestor(self):
        node = Node("a")
        assert not node.is_ancestor_of(node)


class TestMeasures:
    def test_depth(self):
        a = Node("a")
        b = a.new_child("b")
        c = b.new_child("c")
        assert a.depth == 0
        assert c.depth == 2

    def test_dist_from_root(self):
        a = Node("a")
        b = a.new_child("b", 1.5)
        c = b.new_child("c", 2.0)
        assert c.dist_from_root == pytest.approx(3.5)

    def test_root_dist_is_zero(self):
        assert Node("a", 7.0).dist_from_root == 0.0

    def test_ancestors_excludes_self_by_default(self):
        a = Node("a")
        b = a.new_child("b")
        c = b.new_child("c")
        assert [n.name for n in c.ancestors()] == ["b", "a"]

    def test_ancestors_include_self(self):
        a = Node("a")
        b = a.new_child("b")
        assert [n.name for n in b.ancestors(include_self=True)] == ["b", "a"]


class TestTraversal:
    @pytest.fixture
    def shape(self):
        #     r
        #    / \
        #   a   d
        #  / \
        # b   c
        r = Node("r")
        a = r.new_child("a")
        a.new_child("b")
        a.new_child("c")
        r.new_child("d")
        return r

    def test_preorder(self, shape):
        assert [n.name for n in shape.preorder()] == ["r", "a", "b", "c", "d"]

    def test_postorder(self, shape):
        assert [n.name for n in shape.postorder()] == ["b", "c", "a", "d", "r"]

    def test_leaves(self, shape):
        assert [n.name for n in shape.leaves()] == ["b", "c", "d"]

    def test_subtree_size(self, shape):
        assert shape.subtree_size() == 5

    def test_traversal_survives_deep_chain(self):
        root = Node("0")
        walker = root
        for index in range(1, 20000):
            walker = walker.new_child(str(index))
        assert sum(1 for _ in root.preorder()) == 20000
        assert sum(1 for _ in root.postorder()) == 20000

    def test_dewey_label(self, shape):
        c = shape.children[0].children[1]
        assert c.dewey_label() == (1, 2)
        assert shape.dewey_label() == ()

    def test_repr_mentions_name(self):
        assert "'a'" in repr(Node("a"))
