"""Unit tests for bootstrap support analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchmark.bootstrap import (
    bootstrap_support,
    resample_columns,
    support_versus_truth,
)
from repro.benchmark.manager import ALL_ALGORITHMS
from repro.benchmark.metrics import clusters
from repro.errors import QueryError
from repro.simulation.birth_death import yule_tree
from repro.simulation.models import jc69
from repro.simulation.seqgen import evolve_sequences


class TestResampleColumns:
    def test_preserves_shape(self, rng):
        sequences = {"a": "ACGT", "b": "TGCA"}
        resampled = resample_columns(sequences, rng)
        assert set(resampled) == {"a", "b"}
        assert all(len(sequence) == 4 for sequence in resampled.values())

    def test_columns_stay_aligned(self, rng):
        """Resampling permutes/repeats columns but never mixes rows: at
        every output position the (a,b) pair must be one of the input
        column pairs."""
        sequences = {"a": "AACC", "b": "GGTT"}
        input_pairs = set(zip(sequences["a"], sequences["b"]))
        resampled = resample_columns(sequences, rng)
        output_pairs = set(zip(resampled["a"], resampled["b"]))
        assert output_pairs <= input_pairs

    def test_varies_across_draws(self):
        rng = np.random.default_rng(1)
        sequences = {"a": "ACGTACGTACGTACGT"}
        draws = {resample_columns(sequences, rng)["a"] for _ in range(10)}
        assert len(draws) > 1

    def test_empty_raises(self, rng):
        with pytest.raises(QueryError):
            resample_columns({}, rng)

    def test_misaligned_raises(self, rng):
        with pytest.raises(QueryError):
            resample_columns({"a": "ACG", "b": "AC"}, rng)


class TestBootstrapSupport:
    @pytest.fixture(scope="class")
    def analysis(self):
        rng = np.random.default_rng(2)
        truth = yule_tree(8, rng=rng)
        sequences = evolve_sequences(truth, jc69(), 800, rng=rng, scale=0.3)
        result = bootstrap_support(
            sequences, ALL_ALGORITHMS["nj-jc69"], n_replicates=30, rng=rng
        )
        return truth, sequences, result

    def test_replicate_count(self, analysis):
        _truth, _sequences, result = analysis
        assert len(result.replicates) == 30

    def test_supports_in_unit_interval(self, analysis):
        _truth, _sequences, result = analysis
        assert result.support
        for value in result.support.values():
            assert 0.5 < value <= 1.0  # majority threshold

    def test_consensus_leafset(self, analysis):
        _truth, sequences, result = analysis
        assert set(result.consensus.leaf_names()) == set(sequences)

    def test_strong_signal_gets_high_support(self, analysis):
        """With 800 sites and moderate divergence, most true clusters
        should be recovered with solid support."""
        truth, _sequences, result = analysis
        summary = support_versus_truth(result, truth)
        assert summary["true_cluster_recall"] >= 0.5
        assert summary["mean_support_true"] >= 0.6

    def test_support_of_lookup(self, analysis):
        truth, _sequences, result = analysis
        some_cluster = next(iter(result.support))
        assert result.support_of(set(some_cluster)) == result.support[some_cluster]
        assert result.support_of({"nonexistent-taxon"}) == 0.0

    def test_invalid_replicates(self, rng):
        with pytest.raises(QueryError):
            bootstrap_support({"a": "AC", "b": "AC"}, ALL_ALGORITHMS["nj-jc69"],
                              n_replicates=0, rng=rng)

    def test_support_versus_truth_fields(self, analysis):
        truth, _sequences, result = analysis
        summary = support_versus_truth(result, truth)
        assert set(summary) == {
            "mean_support_true",
            "mean_support_false",
            "true_cluster_recall",
        }
