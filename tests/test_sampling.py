"""Unit tests for sampling strategies (in-memory and SQL-backed)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchmark.sampling import (
    random_sample,
    random_sample_stored,
    sample_with_time,
    sample_with_time_stored,
    time_frontier,
    validate_user_sample,
)
from repro.errors import QueryError
from repro.simulation.birth_death import yule_tree
from repro.storage.tree_repository import TreeRepository


class TestRandomSample:
    def test_size_and_uniqueness(self, fig1, rng):
        sample = random_sample(fig1, 3, rng)
        assert len(sample) == 3
        assert len(set(sample)) == 3
        assert set(sample) <= set(fig1.leaf_names())

    def test_full_sample(self, fig1, rng):
        assert set(random_sample(fig1, 5, rng)) == set(fig1.leaf_names())

    def test_oversample_raises(self, fig1, rng):
        with pytest.raises(QueryError):
            random_sample(fig1, 6, rng)

    def test_zero_raises(self, fig1, rng):
        with pytest.raises(QueryError):
            random_sample(fig1, 0, rng)

    def test_all_leaves_reachable(self, fig1):
        rng = np.random.default_rng(0)
        seen: set[str] = set()
        for _ in range(100):
            seen.update(random_sample(fig1, 1, rng))
        assert seen == set(fig1.leaf_names())


class TestTimeFrontier:
    def test_paper_example(self, fig1):
        assert {n.name for n in time_frontier(fig1, 1.0)} == {
            "Bha",
            "x",
            "Syn",
            "Bsu",
        }

    def test_zero_time_gives_root_children(self, fig1):
        assert {n.name for n in time_frontier(fig1, 0.0)} == {"Syn", "A", "Bsu"}

    def test_beyond_horizon_empty(self, fig1):
        assert time_frontier(fig1, 10.0) == []

    def test_frontier_is_minimal_cut(self, fig1):
        """No frontier node is an ancestor of another, and every leaf
        past the time lies under exactly one frontier node."""
        frontier = time_frontier(fig1, 1.0)
        for a in frontier:
            for b in frontier:
                if a is not b:
                    assert not a.is_ancestor_of(b)

    def test_frontier_property_on_random_trees(self, random_tree_factory):
        for seed in range(5):
            tree = random_tree_factory(60, seed)
            distances = tree.distances_from_root()
            cut = max(distances.values()) * 0.4
            for node in time_frontier(tree, cut):
                assert distances[id(node)] > cut
                if node.parent is not None:
                    assert distances[id(node.parent)] <= cut


class TestSampleWithTime:
    def test_stratification(self, fig1):
        rng = np.random.default_rng(1)
        sample = sample_with_time(fig1, 1.0, 4, rng)
        assert len(sample) == 4
        # One leaf per frontier subtree.
        assert "Bha" in sample and "Syn" in sample and "Bsu" in sample
        assert ("Lla" in sample) != ("Spy" in sample)

    def test_remainder_distribution(self, fig1):
        rng = np.random.default_rng(2)
        for _ in range(20):
            sample = sample_with_time(fig1, 1.0, 5, rng)
            assert len(sample) == len(set(sample)) == 5

    def test_shortfall_redistribution(self, fig1):
        # k=3 from 4 frontier groups: three groups contribute one each.
        rng = np.random.default_rng(3)
        sample = sample_with_time(fig1, 1.0, 3, rng)
        assert len(sample) == 3

    def test_empty_frontier_raises(self, fig1, rng):
        with pytest.raises(QueryError):
            sample_with_time(fig1, 99.0, 2, rng)

    def test_oversample_raises(self, fig1, rng):
        with pytest.raises(QueryError):
            sample_with_time(fig1, 1.0, 6, rng)

    def test_all_sampled_leaves_past_time(self, rng):
        tree = yule_tree(60, rng=rng)
        distances = tree.distances_from_root()
        horizon = max(distances.values())
        sample = sample_with_time(tree, horizon * 0.5, 10, rng)
        assert len(sample) == 10  # all leaves are at the horizon


class TestUserSample:
    def test_valid(self, fig1):
        assert validate_user_sample(fig1, ["Lla", "Syn"]) == ["Lla", "Syn"]

    def test_deduplication(self, fig1):
        assert validate_user_sample(fig1, ["Lla", "Lla"]) == ["Lla"]

    def test_empty_raises(self, fig1):
        with pytest.raises(QueryError):
            validate_user_sample(fig1, [])

    def test_unknown_raises(self, fig1):
        with pytest.raises(QueryError):
            validate_user_sample(fig1, ["ghost"])

    def test_interior_raises(self, fig1):
        with pytest.raises(QueryError):
            validate_user_sample(fig1, ["x"])


class TestStoredVariants:
    @pytest.fixture
    def stored(self, db, fig1):
        return TreeRepository(db).store_tree(fig1, f=2)

    def test_random_stored(self, stored, rng):
        sample = random_sample_stored(stored, 3, rng)
        assert len(set(sample)) == 3

    def test_random_stored_oversample(self, stored, rng):
        with pytest.raises(QueryError):
            random_sample_stored(stored, 99, rng)

    def test_time_stored_matches_paper(self, stored):
        rng = np.random.default_rng(4)
        for _ in range(10):
            sample = set(sample_with_time_stored(stored, 1.0, 4, rng))
            assert sample in (
                {"Bha", "Lla", "Syn", "Bsu"},
                {"Bha", "Spy", "Syn", "Bsu"},
            )

    def test_time_stored_empty_frontier(self, stored, rng):
        with pytest.raises(QueryError):
            sample_with_time_stored(stored, 50.0, 2, rng)

    def test_stored_agrees_with_memory_distribution(self, db, rng):
        """The SQL and in-memory stratifications draw from identical
        frontier groups."""
        tree = yule_tree(40, rng=rng)
        stored = TreeRepository(db).store_tree(tree, name="y40")
        distances = tree.distances_from_root()
        cut = max(distances.values()) * 0.3
        memory_frontier = {n.name or "anon" for n in time_frontier(tree, cut)}
        sql_frontier = {row.name or "anon" for row in stored.time_frontier(cut)}
        # Anonymous interior nodes: compare by count and leaf coverage.
        assert len(memory_frontier) == len(sql_frontier)
