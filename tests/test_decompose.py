"""Unit tests for bounded-depth decomposition."""

from __future__ import annotations

import pytest

from repro.core.decompose import block_depths, block_parent_tree, decompose
from repro.errors import QueryError
from repro.trees.build import balanced, caterpillar
from repro.trees.node import Node
from repro.trees.tree import PhyloTree


class TestBasicProperties:
    def test_invalid_bound(self, fig1):
        with pytest.raises(QueryError):
            decompose(fig1, 0)

    def test_every_node_has_one_canonical_position(self, fig1):
        decomposition = decompose(fig1, 2)
        assert set(decomposition.block_of) == {id(n) for n in fig1.preorder()}
        assert set(decomposition.label_of) == {id(n) for n in fig1.preorder()}

    def test_label_bound_respected(self):
        for f in (1, 2, 3, 5):
            decomposition = decompose(caterpillar(40), f)
            assert decomposition.max_label_length() <= f

    def test_single_block_when_shallow(self, fig1):
        decomposition = decompose(fig1, 10)
        assert len(decomposition.blocks) == 1
        assert decomposition.blocks[0].is_top

    def test_members_partition_nodes(self):
        tree = balanced(4)
        decomposition = decompose(tree, 2)
        seen: set[int] = set()
        for block in decomposition.blocks:
            for node, _label in block.members:
                assert id(node) not in seen
                seen.add(id(node))
        assert seen == {id(n) for n in tree.preorder()}

    def test_labels_locally_unique(self):
        tree = balanced(4)
        decomposition = decompose(tree, 2)
        for block in decomposition.blocks:
            labels = [label for _node, label in block.members]
            assert len(set(labels)) == len(labels)

    def test_local_label_consistent_with_block(self):
        tree = balanced(3)
        decomposition = decompose(tree, 2)
        for block in decomposition.blocks:
            for node, label in block.members:
                assert decomposition.block_of[id(node)] == block.block_id
                assert decomposition.local_label(node) == label

    def test_foreign_node_raises(self, fig1):
        decomposition = decompose(fig1, 2)
        with pytest.raises(QueryError):
            decomposition.local_label(Node("alien"))


class TestBoundarySemantics:
    def test_boundary_node_stays_in_parent_block(self, fig1):
        decomposition = decompose(fig1, 2)
        x = fig1.find("x")
        assert decomposition.block_of[id(x)] == 0
        assert decomposition.local_label(x) == (2, 1)

    def test_split_block_root_is_boundary_node(self, fig1):
        decomposition = decompose(fig1, 2)
        assert decomposition.blocks[1].root is fig1.find("x")

    def test_source_points_into_parent_block(self):
        tree = caterpillar(20)
        decomposition = decompose(tree, 3)
        for block in decomposition.blocks:
            if block.is_top:
                assert block.source_label is None
            else:
                assert block.source_block is not None
                parent = decomposition.blocks[block.source_block]
                member_labels = {label for _n, label in parent.members}
                assert block.source_label in member_labels

    def test_leaf_at_boundary_depth_spawns_no_block(self):
        # Chain of exactly f edges: the deepest node is a leaf at local
        # depth f; it must not create an empty block.
        root = Node("r")
        walker = root
        for name in ("a", "b"):
            walker = walker.new_child(name, 1.0)
        decomposition = decompose(PhyloTree(root), 2)
        assert len(decomposition.blocks) == 1


class TestPreOrderContract:
    """Regression: ``Block.members`` promised pre-order but the original
    LIFO traversal pushed children forwards, yielding reversed-DFS."""

    @pytest.mark.parametrize("f", [1, 2, 3])
    def test_members_are_preorder_restriction(self, f):
        tree = balanced(4, arity=3)  # branching, depth 4
        decomposition = decompose(tree, f)
        preorder = list(tree.preorder())
        for block in decomposition.blocks:
            members = [node for node, _label in block.members]
            in_block = {id(node) for node in members}
            expected = [node for node in preorder if id(node) in in_block]
            assert members == expected

    def test_members_preorder_on_fig1(self, fig1):
        decomposition = decompose(fig1, 2)
        top_members = [node.name for node, _ in decomposition.blocks[0].members]
        assert top_members == ["R", "Syn", "A", "x", "Bha", "Bsu"]
        split_members = [
            node.name for node, _ in decomposition.blocks[1].members
        ]
        assert split_members == ["Lla", "Spy"]

    def test_labels_monotone_with_member_order(self):
        # Within a block, pre-order means a member's label is emitted
        # after its (in-block) parent's label.
        tree = balanced(5)
        decomposition = decompose(tree, 2)
        for block in decomposition.blocks:
            seen: set[tuple[int, ...]] = {()}
            for _node, label in block.members:
                if label:
                    assert label[:-1] in seen
                seen.add(label)


class TestBlockChains:
    def test_chain_ends_at_top(self):
        tree = caterpillar(30)
        decomposition = decompose(tree, 2)
        deepest_leaf = max(
            tree.root.leaves(), key=lambda leaf: leaf.depth
        )
        chain = decomposition.block_chain(deepest_leaf)
        assert chain[-1] == 0
        assert decomposition.blocks[chain[-1]].is_top

    def test_chain_length_tracks_depth_over_f(self):
        tree = caterpillar(41)  # depth 40
        for f in (2, 4, 8):
            decomposition = decompose(tree, f)
            deepest = max(tree.root.leaves(), key=lambda leaf: leaf.depth)
            chain = decomposition.block_chain(deepest)
            assert len(chain) == pytest.approx(40 / f, abs=2)

    def test_block_parent_tree_consistency(self):
        tree = balanced(5)
        decomposition = decompose(tree, 2)
        parents = block_parent_tree(decomposition)
        assert parents[0] is None
        for block in decomposition.blocks[1:]:
            assert parents[block.block_id] == block.source_block

    def test_block_depths(self):
        tree = caterpillar(17)  # depth 16
        decomposition = decompose(tree, 4)
        depths = block_depths(decomposition)
        assert depths[0] == 0
        assert max(depths.values()) == len(decomposition.blocks) - 1 or True
        # Depths must increase by exactly 1 along the parent relation.
        parents = block_parent_tree(decomposition)
        for block_id, parent_id in parents.items():
            if parent_id is not None:
                assert depths[block_id] == depths[parent_id] + 1
