"""Failure injection: corrupted stores, closed handles, bad files.

A data management system must fail loudly and specifically, not return
wrong answers.  These tests damage the relational store in targeted
ways and assert every corruption surfaces as :class:`StorageError`
(never a silent wrong result), and that OS-level problems propagate
sanely.
"""

from __future__ import annotations

import pytest

from repro.errors import CrimsonError, ParseError, QueryError, StorageError
from repro.storage.database import CrimsonDatabase
from repro.storage.loader import DataLoader
from repro.storage.projection import project_stored
from repro.storage.query_repository import QueryRepository
from repro.storage.species_repository import SpeciesRepository
from repro.storage.tree_repository import TreeRepository


@pytest.fixture
def stored(db, fig1):
    return TreeRepository(db).store_tree(fig1, f=2)


class TestIndexCorruption:
    def test_missing_canonical_inode(self, db, stored):
        lla = stored.node_by_name("Lla")
        db.execute(
            "DELETE FROM inodes WHERE orig_node_id = ? AND is_canonical = 1",
            (lla.node_id,),
        )
        with pytest.raises(StorageError, match="canonical"):
            stored.lca("Lla", "Syn")

    def test_missing_block_row(self, db, stored):
        db.execute("DELETE FROM blocks WHERE block_id = 1")
        with pytest.raises(StorageError):
            stored.lca("Lla", "Syn")

    def test_missing_rep_inode(self, db, stored):
        db.execute("UPDATE blocks SET rep_inode_id = NULL WHERE layer = 0")
        with pytest.raises(StorageError, match="rep"):
            stored.lca("Lla", "Syn")

    def test_broken_source_chain(self, db, stored):
        db.execute(
            "UPDATE blocks SET source_inode_id = NULL WHERE source_inode_id "
            "IS NOT NULL AND layer = 0"
        )
        with pytest.raises(StorageError):
            stored.lca("Lla", "Syn")

    def test_missing_prefix_inode(self, db, stored):
        # Remove the inode the common-prefix lookup lands on (the root ε).
        db.execute(
            "DELETE FROM inodes WHERE local_label = '' AND layer = 0 "
            "AND block_id = 0"
        )
        with pytest.raises(StorageError):
            stored.lca("Syn", "Bsu")

    def test_same_block_queries_unaffected_by_other_block_damage(
        self, db, stored
    ):
        """Corruption in block 2's rows must not disturb block-1-local
        queries — locality is the point of the decomposition."""
        db.execute("DELETE FROM blocks WHERE block_id = 1")
        assert stored.lca("Syn", "Bsu").name == "R"


class TestClosedDatabase:
    def test_stored_tree_after_close(self, fig1):
        db = CrimsonDatabase()
        handle = TreeRepository(db).store_tree(fig1, f=2)
        db.close()
        with pytest.raises(StorageError, match="closed"):
            handle.node_by_name("Lla")

    def test_repositories_after_close(self, fig1):
        db = CrimsonDatabase()
        repo = TreeRepository(db)
        handle = repo.store_tree(fig1, f=2)
        species = SpeciesRepository(db)
        history = QueryRepository(db)
        db.close()
        with pytest.raises(StorageError):
            repo.list_trees()
        with pytest.raises(StorageError):
            species.count(handle)
        with pytest.raises(StorageError):
            history.recent()

    def test_projection_after_close(self, fig1):
        db = CrimsonDatabase()
        handle = TreeRepository(db).store_tree(fig1, f=2)
        db.close()
        with pytest.raises(StorageError):
            project_stored(handle, ["Lla", "Syn"])


class TestTransactionalAtomicity:
    def test_failed_store_leaves_no_partial_rows(self, db, fig1):
        """A storage failure mid-transaction must roll back everything:
        no orphan node/inode rows without a catalogue entry."""
        repo = TreeRepository(db)
        repo.store_tree(fig1, f=2)
        clone = fig1.copy()
        with pytest.raises(StorageError):
            repo.store_tree(clone)  # duplicate name → fails before writes
        trees = db.query_one("SELECT COUNT(*) AS n FROM trees")["n"]
        nodes = db.query_one(
            "SELECT COUNT(DISTINCT tree_id) AS n FROM nodes"
        )["n"]
        assert trees == nodes == 1

    def test_species_attach_is_atomic(self, db, stored):
        species = SpeciesRepository(db)
        with pytest.raises(QueryError):
            # Second row is bad → nothing may be written.
            species.attach_sequences(stored, {"Lla": "AC", "ghost": "AC"})
        assert species.count(stored) == 0


class TestBadInputFiles:
    def test_loader_on_missing_file(self, db, tmp_path):
        loader = DataLoader(db)
        # I/O failures are part of the CrimsonError hierarchy now.
        with pytest.raises(StorageError):
            loader.load_nexus_file(tmp_path / "missing.nex")

    def test_loader_on_binary_garbage(self, db, tmp_path):
        path = tmp_path / "garbage.nex"
        path.write_bytes(bytes(range(256)))
        loader = DataLoader(db)
        with pytest.raises((ParseError, UnicodeDecodeError)):
            loader.load_nexus_file(path)

    def test_loader_reports_nothing_stored_after_parse_error(self, db):
        loader = DataLoader(db)
        with pytest.raises(ParseError):
            loader.load_nexus_text("#NEXUS\nBEGIN TREES;\nTREE t = ((a,b);\nEND;\n")
        assert TreeRepository(db).list_trees() == []

    def test_all_library_errors_share_base(self):
        """Callers can catch everything with one except clause."""
        for exc in (ParseError, StorageError, QueryError):
            assert issubclass(exc, CrimsonError)
