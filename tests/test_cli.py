"""End-to-end tests of the ``crimson`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli.main import build_parser, main

NEXUS = """#NEXUS
BEGIN CHARACTERS;
    FORMAT DATATYPE=DNA;
    MATRIX
        a ACGTACGT
        b ACGTACGA
        c ACCTACGT
        d GCGTACGT
    ;
END;
BEGIN TREES;
    TREE demo = ((a:1,b:1):0.5,(c:1,d:1):0.5);
END;
"""


@pytest.fixture
def dbpath(tmp_path):
    return str(tmp_path / "cli.db")


def run(dbpath, *args, seed=None):
    argv = ["--db", dbpath]
    if seed is not None:
        argv += ["--seed", str(seed)]
    return main(argv + [str(a) for a in args])


@pytest.fixture
def loaded(dbpath, tmp_path):
    path = tmp_path / "demo.nex"
    path.write_text(NEXUS)
    assert run(dbpath, "load", path) == 0
    return dbpath


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in (
            ["list"],
            ["info", "t"],
            ["lca", "t", "a", "b"],
            ["benchmark", "t", "-k", "5"],
            ["simulate", "--name", "x"],
            ["serve", "--port", "2006"],
        ):
            assert parser.parse_args(command).command == command[0]


class TestArgumentValidation:
    """Bad numeric flags exit 2 with a one-line message, no traceback."""

    BAD_FLAGS = [
        (["--readers", "-1", "list"], "must be at least 0"),
        (["--readers", "many", "list"], "is not an integer"),
        (["--shards", "0", "list"], "must be at least 1"),
        (["--shards", "-3", "list"], "must be at least 1"),
        (["--cache-size", "0", "list"], "must be at least 1"),
        (["serve", "--port", "0"], "between 1 and 65535"),
        (["serve", "--port", "65536"], "between 1 and 65535"),
        (["serve", "--port", "meh"], "is not an integer"),
    ]

    @pytest.mark.parametrize(
        "argv, message", BAD_FLAGS, ids=lambda v: " ".join(v) if isinstance(v, list) else v
    )
    def test_clean_one_line_error(self, dbpath, argv, message, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--db", dbpath, *argv])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert message in err
        assert "Traceback" not in err

    def test_valid_flags_still_accepted(self, loaded, capsys):
        assert (
            main(
                ["--db", loaded, "--readers", "2", "--shards", "1",
                 "lca", "demo", "a", "b"]
            )
            == 0
        )
        assert "LCA:" in capsys.readouterr().out


class TestLoadAndCatalogue:
    def test_load_and_list(self, loaded, capsys):
        assert run(loaded, "list") == 0
        assert "demo" in capsys.readouterr().out

    def test_info(self, loaded, capsys):
        assert run(loaded, "info", "demo") == 0
        output = capsys.readouterr().out
        assert "leaves:" in output
        assert "species rows" in output

    def test_load_newick(self, dbpath, tmp_path, capsys):
        path = tmp_path / "t.nwk"
        path.write_text("(a:1,b:2);")
        assert run(dbpath, "load", path, "--format", "newick") == 0

    def test_delete(self, loaded, capsys):
        assert run(loaded, "delete", "demo") == 0
        run(loaded, "list")
        assert "no trees stored" in capsys.readouterr().out

    def test_error_on_unknown_tree(self, dbpath, capsys):
        assert run(dbpath, "info", "ghost") == 1
        assert "error:" in capsys.readouterr().err

    def test_append_species(self, loaded, tmp_path, capsys):
        matrix = tmp_path / "chars.nex"
        matrix.write_text(NEXUS)
        assert run(loaded, "append-species", "demo", matrix, "--replace") == 0


class TestQueries:
    def test_lca(self, loaded, capsys):
        assert run(loaded, "lca", "demo", "a", "b") == 0
        assert "LCA:" in capsys.readouterr().out

    def test_lca_batch(self, loaded, capsys):
        assert run(loaded, "lca-batch", "demo", "a,b", "c,d") == 0
        output = capsys.readouterr().out
        assert "LCA(a, b):" in output
        assert "LCA(c, d):" in output

    def test_lca_batch_stats(self, loaded, capsys):
        assert run(loaded, "lca-batch", "demo", "a,b", "a,b", "--stats") == 0
        output = capsys.readouterr().out
        assert "cache" in output
        assert "hits=" in output

    def test_lca_batch_malformed_pair(self, loaded, capsys):
        assert run(loaded, "lca-batch", "demo", "a") == 1
        assert "comma-separated" in capsys.readouterr().err

    def test_cache_size_flag(self, loaded, capsys):
        assert (
            main(["--db", loaded, "--cache-size", "2", "lca", "demo", "a", "b"])
            == 0
        )
        assert "LCA:" in capsys.readouterr().out

    def test_readers_flag(self, loaded, capsys):
        assert (
            main(["--db", loaded, "--readers", "2", "lca", "demo", "a", "b"])
            == 0
        )
        assert "LCA:" in capsys.readouterr().out

    def test_readers_flag_rejects_negative(self, loaded):
        with pytest.raises(SystemExit) as excinfo:
            main(["--db", loaded, "--readers", "-1", "list"])
        assert excinfo.value.code == 2

    def test_load_missing_file_exits_one(self, dbpath, capsys):
        assert run(dbpath, "load", "/no/such/file.nex") == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_unknown_taxon_exits_one(self, loaded, capsys):
        assert run(loaded, "lca", "demo", "a", "ghost") == 1
        assert "error:" in capsys.readouterr().err

    def test_clade(self, loaded, capsys):
        assert run(loaded, "clade", "demo", "a", "b") == 0
        output = capsys.readouterr().out
        assert "leaf" in output

    def test_frontier(self, loaded, capsys):
        assert run(loaded, "frontier", "demo", "--time", "0.7") == 0
        output = capsys.readouterr().out
        assert "dist=" in output

    def test_sample(self, loaded, capsys):
        assert run(loaded, "sample", "demo", "-k", "2", seed=1) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2

    def test_sample_time(self, loaded, capsys):
        assert (
            run(loaded, "sample", "demo", "-k", "2", "--method", "time",
                "--time", "0.7", seed=1)
            == 0
        )

    def test_project_explicit(self, loaded, capsys):
        assert run(loaded, "project", "demo", "--taxa", "a", "b", "c") == 0
        assert capsys.readouterr().out.strip().endswith(";")

    def test_project_random(self, loaded, capsys):
        assert run(loaded, "project", "demo", "-k", "2", seed=3) == 0

    def test_match_success_exit_code(self, loaded, capsys):
        assert run(loaded, "match", "demo", "((a,b),(c,d));") == 0
        assert "matched:    True" in capsys.readouterr().out

    def test_match_failure_exit_code(self, loaded, capsys):
        assert run(loaded, "match", "demo", "((a,c),(b,d));") == 1

    def test_history_records_queries(self, loaded, capsys):
        run(loaded, "lca", "demo", "a", "b")
        run(loaded, "history")
        assert "lca" in capsys.readouterr().out


@pytest.fixture
def profile_db(dbpath, tmp_path):
    """Three stored trees over one leaf set (two agree, one dissents)."""
    shapes = {
        "t1": "((a:1,b:1):0.5,(c:1,d:1):0.5)r;",
        "t2": "((a:1,c:1):0.5,(b:1,d:1):0.5)r;",
        "t3": "((a:1,b:1):0.5,(c:1,d:1):0.5)r;",
    }
    for name, newick in shapes.items():
        path = tmp_path / f"{name}.nwk"
        path.write_text(newick + "\n")
        assert run(dbpath, "load", path, "--format", "newick", "--name", name) == 0
    return dbpath


class TestAnalyticsCommands:
    def test_compare_two_trees(self, profile_db, capsys):
        assert run(profile_db, "compare", "t1", "t2") == 0
        output = capsys.readouterr().out
        assert "RF distance:     2" in output
        assert "shared clusters:" in output
        assert "normalized RF:" in output

    def test_compare_identical_trees(self, profile_db, capsys):
        assert run(profile_db, "compare", "t1", "t3") == 0
        assert "RF distance:     0" in capsys.readouterr().out

    def test_compare_many_prints_matrix(self, profile_db, capsys):
        assert run(profile_db, "compare", "t1", "t2", "t3") == 0
        output = capsys.readouterr().out
        lines = output.strip().splitlines()
        assert lines[0].split() == ["t1", "t2", "t3"]
        assert lines[1].split() == ["t1", "0", "2", "0"]

    def test_consensus_prints_newick(self, profile_db, capsys):
        assert run(profile_db, "consensus", "t1", "t2", "t3") == 0
        output = capsys.readouterr().out
        # The majority groups (a,b) and (c,d): t2 is outvoted 2-to-1.
        assert output.startswith("(")
        assert "a" in output and "d" in output

    def test_consensus_support_table(self, profile_db, capsys):
        assert run(
            profile_db, "consensus", "t1", "t2", "t3", "--support"
        ) == 0
        output = capsys.readouterr().out
        assert "66.7%" in output
        assert "{a, b}" in output

    def test_consensus_strict(self, profile_db, capsys):
        assert run(profile_db, "consensus", "t1", "t3", "--strict") == 0
        assert capsys.readouterr().out.startswith("(")

    def test_consensus_ascii_format(self, profile_db, capsys):
        assert run(
            profile_db, "consensus", "t1", "t3", "--format", "ascii"
        ) == 0
        assert capsys.readouterr().out

    def test_disjoint_leaf_sets_exit_one(self, profile_db, tmp_path, capsys):
        other = tmp_path / "other.nwk"
        other.write_text("((x:1,y:1):1,z:1)r;\n")
        assert run(profile_db, "load", other, "--format", "newick") == 0
        capsys.readouterr()
        assert run(profile_db, "compare", "t1", "other") == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "different leaf sets" in err

    def test_bad_threshold_exit_codes(self, profile_db, capsys):
        # Out-of-range: a typed QueryError, exit 1.
        assert run(profile_db, "consensus", "t1", "--threshold", "0.3") == 1
        assert "threshold" in capsys.readouterr().err
        # Unparseable: an argparse error, exit 2.
        with pytest.raises(SystemExit) as excinfo:
            run(profile_db, "consensus", "t1", "--threshold", "meh")
        assert excinfo.value.code == 2

    def test_compare_single_tree_exit_one(self, profile_db, capsys):
        assert run(profile_db, "compare", "t1") == 1
        assert "at least two trees" in capsys.readouterr().err

    def test_unknown_tree_exit_one(self, profile_db, capsys):
        assert run(profile_db, "compare", "t1", "missing") == 1
        assert "no tree named" in capsys.readouterr().err

    def test_analytics_recorded_and_rerunnable(self, profile_db, capsys):
        assert run(profile_db, "compare", "t1", "t2") == 0
        assert run(profile_db, "consensus", "t1", "t2", "t3") == 0
        capsys.readouterr()
        assert run(profile_db, "history") == 0
        history = capsys.readouterr().out
        assert "compare" in history and "consensus" in history
        # Recorded query #1 is the compare; rerun replays it.
        assert run(profile_db, "rerun", "1") == 0
        output = capsys.readouterr().out
        assert "re-running #1: compare" in output
        assert "RF distance:     2" in output


class TestViewAndExport:
    @pytest.mark.parametrize(
        "fmt,needle",
        [
            ("ascii", "└──"),
            ("phylogram", "|"),
            ("newick", ";"),
            ("nexus", "#NEXUS"),
            ("walrus", "walrus-json"),
        ],
    )
    def test_view_formats(self, loaded, capsys, fmt, needle):
        assert run(loaded, "view", "demo", "--format", fmt) == 0
        assert needle in capsys.readouterr().out

    def test_export_walrus(self, loaded, tmp_path, capsys):
        out = tmp_path / "demo.json"
        assert run(loaded, "export", "demo", out, "--format", "walrus") == 0
        document = json.loads(out.read_text())
        assert document["n_nodes"] == 7


class TestSimulateAndBenchmark:
    def test_simulate_structure_only(self, dbpath, capsys):
        assert (
            run(dbpath, "simulate", "--name", "sim", "--leaves", "20", seed=5)
            == 0
        )
        run(dbpath, "info", "sim")
        assert "leaves:      20" in capsys.readouterr().out

    def test_simulate_with_sequences_and_benchmark(self, dbpath, capsys):
        assert (
            run(
                dbpath, "simulate", "--name", "sim", "--leaves", "30",
                "--seq-length", "200", "--subst-model", "hky85", seed=6,
            )
            == 0
        )
        assert (
            run(
                dbpath, "benchmark", "sim", "-k", "8", "--trials", "1",
                "--algorithms", "nj-jc69", "random", seed=7,
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "nj-jc69" in output
        assert "random" in output

    def test_simulate_birth_death(self, dbpath, capsys):
        assert (
            run(
                dbpath, "simulate", "--name", "bd", "--model", "birth-death",
                "--leaves", "15", "--death", "0.2", seed=8,
            )
            == 0
        )

    def test_simulate_coalescent(self, dbpath, capsys):
        assert (
            run(
                dbpath, "simulate", "--name", "co", "--model", "coalescent",
                "--leaves", "12", seed=9,
            )
            == 0
        )


class TestBootstrapCommand:
    def test_bootstrap_end_to_end(self, dbpath, capsys):
        assert (
            run(
                dbpath, "simulate", "--name", "sim", "--leaves", "25",
                "--seq-length", "300", seed=11,
            )
            == 0
        )
        assert (
            run(
                dbpath, "bootstrap", "sim", "-k", "6",
                "--replicates", "20", "--algorithm", "nj-jc69", seed=12,
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "replicates" in output
        assert "mean support" in output

    def test_bootstrap_without_species_data_fails(self, loaded, capsys):
        # The 'demo' fixture tree has species data, so delete it first.
        from repro.storage.database import CrimsonDatabase
        from repro.storage.species_repository import SpeciesRepository
        from repro.storage.tree_repository import TreeRepository

        with CrimsonDatabase(loaded) as db:
            repo = TreeRepository(db)
            species = SpeciesRepository(db)
            species.delete_for_tree(repo.open("demo"))
        assert run(loaded, "bootstrap", "demo", "-k", "3", seed=1) == 1
        assert "error:" in capsys.readouterr().err

    def test_bootstrap_recorded_in_history(self, dbpath, capsys):
        run(dbpath, "simulate", "--name", "sim", "--leaves", "20",
            "--seq-length", "200", seed=13)
        run(dbpath, "bootstrap", "sim", "-k", "5", "--replicates", "10",
            seed=14)
        capsys.readouterr()
        run(dbpath, "history")
        assert "bootstrap" in capsys.readouterr().out


class TestMonitoringCommands:
    def test_health_local_is_ok_and_exit_zero(self, loaded, capsys):
        assert run(loaded, "health") == 0
        output = capsys.readouterr().out
        assert output.startswith("status: ok")
        assert "inflight_fraction" in output

    def test_health_json_is_parseable(self, loaded, capsys):
        assert run(loaded, "health", "--json") == 0
        report = json.loads(capsys.readouterr().out)
        assert report["status"] == "ok"
        assert {check["name"] for check in report["checks"]} == {
            "error_rate", "p99_ms", "queue_depth", "inflight_fraction"
        }

    def test_top_renders_one_bounded_frame(self, loaded, capsys):
        assert run(loaded, "lca", "demo", "a", "b") == 0
        capsys.readouterr()
        assert run(loaded, "top", "--iterations", "1") == 0
        frame = capsys.readouterr().out
        assert frame.startswith("crimson top —")
        assert "transport=local" in frame

    def test_top_rejects_negative_iterations(self, loaded, capsys):
        with pytest.raises(SystemExit):
            run(loaded, "top", "--iterations", "-1")
