"""The wire codec: JSON round-trips of requests, results, and errors.

Every payload crosses a real ``json.dumps``/``json.loads`` boundary in
these tests, so nothing non-serializable or lossy (tuples, floats,
unicode, quoted Newick labels) can hide in the encoded dicts.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.errors as errors_module
from repro.errors import (
    CrimsonError,
    ProtocolError,
    QueryError,
    StorageError,
)
from repro.storage import wire
from repro.storage.api import AnalyticsRequest, QueryRequest, QueryResult
from repro.storage.maintenance import IntegrityReport
from repro.storage.store import CrimsonStore
from repro.trees.build import sample_tree
from repro.trees.newick import write_newick


def over_json(payload):
    """Force a payload through an actual JSON byte boundary."""
    return json.loads(json.dumps(payload, ensure_ascii=False))


# Taxon names exercising unicode, Newick metacharacters, quotes, and
# the underscore-for-space convention.
TRICKY_NAMES = st.text(
    alphabet=st.characters(
        codec="utf-8", exclude_characters="\x00", exclude_categories=("Cs",)
    ),
    min_size=1,
    max_size=12,
).filter(lambda s: s.strip() == s and s != "")

taxon_refs = st.one_of(st.integers(min_value=0, max_value=10**6), TRICKY_NAMES)


def requests_for(operation: str):
    """A hypothesis strategy of valid requests for one operation."""
    tree = TRICKY_NAMES
    if operation == "lca_batch":
        return st.builds(
            QueryRequest.lca_batch,
            tree,
            st.lists(st.tuples(taxon_refs, taxon_refs), min_size=1, max_size=5),
        )
    if operation == "match":
        return st.builds(
            QueryRequest.match,
            tree,
            st.just("((a,b),c);"),
            ordered=st.booleans(),
        )
    taxa = (
        st.lists(TRICKY_NAMES, min_size=1, max_size=5)
        if operation == "project"
        else st.lists(taxon_refs, min_size=1, max_size=5)
    )
    constructor = getattr(QueryRequest, operation)
    return st.builds(lambda t, xs: constructor(t, *xs), tree, taxa)


SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestRequestRoundTrip:
    @pytest.mark.parametrize(
        "operation", ["lca", "lca_batch", "clade", "project", "match"]
    )
    def test_every_operation_round_trips(self, operation):
        @SETTINGS
        @given(request=requests_for(operation))
        def check(request):
            decoded = wire.decode_request(
                over_json(wire.encode_request(request))
            )
            assert decoded == request

        check()

    def test_unicode_taxa_survive(self):
        request = QueryRequest.lca("gold", "Δrosophila", "果蝇", "Δ'quoted'")
        assert (
            wire.decode_request(over_json(wire.encode_request(request)))
            == request
        )

    def test_decoded_request_is_revalidated(self):
        payload = over_json(
            wire.encode_request(QueryRequest.lca("gold", "a", "b"))
        )
        payload["taxa"] = []
        with pytest.raises(QueryError):
            wire.decode_request(payload)
        payload["taxa"] = [["not", "a"], "taxon"]
        with pytest.raises(QueryError):
            wire.decode_request(payload)

    def test_bad_duration_is_protocol_error(self):
        result = QueryResult(
            request=QueryRequest.lca("t", "a", "b"), duration_ms=1.5
        )
        payload = over_json(wire.encode_result(result))
        for bad in (None, "fast", True):
            payload["duration_ms"] = bad
            with pytest.raises(ProtocolError, match="duration_ms"):
                wire.decode_result(payload)

    def test_malformed_shape_is_protocol_error(self):
        with pytest.raises(ProtocolError):
            wire.decode_request(
                wire.stamp({"operation": "lca"})  # no tree field
            )
        with pytest.raises(ProtocolError):
            wire.decode_request(wire.stamp({"operation": 3, "tree": "t"}))
        with pytest.raises(ProtocolError):
            wire.decode_request("not a mapping")


@pytest.fixture
def stored_store():
    with CrimsonStore.open() as store:
        store.trees.store_tree(sample_tree(), f=2)
        yield store


class TestResultRoundTrip:
    REQUESTS = {
        "lca": lambda t: QueryRequest.lca(t, "Lla", "Syn"),
        "lca_batch": lambda t: QueryRequest.lca_batch(
            t, [("Lla", "Spy"), ("Bha", "Syn")]
        ),
        "clade": lambda t: QueryRequest.clade(t, "Lla", "Spy"),
        "project": lambda t: QueryRequest.project(t, "Lla", "Syn", "Bha"),
        "match": lambda t: QueryRequest.match(t, "(Lla,Spy);"),
    }

    @pytest.mark.parametrize("operation", sorted(REQUESTS))
    def test_every_operation_result_round_trips(
        self, stored_store, operation
    ):
        request = self.REQUESTS[operation]("fig1-sample")
        result = stored_store.query(request)
        decoded = wire.decode_result(over_json(wire.encode_result(result)))
        assert decoded.request == request
        assert decoded.duration_ms == result.duration_ms
        assert decoded.nodes == result.nodes
        assert decoded.matched == result.matched
        assert decoded.similarity == result.similarity
        if result.projection is None:
            assert decoded.projection is None
        else:
            assert write_newick(decoded.projection) == write_newick(
                result.projection
            )
            assert decoded.projection.name == result.projection.name

    def test_quoted_newick_names_survive(self):
        from repro.trees.newick import parse_newick

        tree = parse_newick("('it''s a leaf':1.5,'with space':2.25)root;")
        tree.name = "quoted"
        result = QueryResult(
            request=QueryRequest.project("t", "x"),
            duration_ms=1.0,
            projection=tree,
        )
        decoded = wire.decode_result(over_json(wire.encode_result(result)))
        assert decoded.projection.leaf_names() == ["it's a leaf", "with space"]
        assert decoded.projection.name == "quoted"
        assert write_newick(decoded.projection) == write_newick(tree)

    def test_node_rows_survive_bit_for_bit(self, stored_store):
        result = stored_store.query(
            QueryRequest.clade("fig1-sample", "Lla", "Syn")
        )
        decoded = wire.decode_result(over_json(wire.encode_result(result)))
        assert decoded.nodes == result.nodes
        assert all(
            type(row.dist_from_root) is float for row in decoded.nodes
        )


@pytest.fixture
def analytics_store():
    from repro.trees.build import caterpillar
    from repro.trees.newick import parse_newick

    with CrimsonStore.open() as store:
        store.trees.store_tree(caterpillar(8), name="ladder", f=4)
        store.trees.store_tree(
            parse_newick("(((t1,t2),(t3,t4)),((t5,t6),(t7,t8)))r;"),
            name="bush",
            f=4,
        )
        store.trees.store_tree(
            parse_newick("(((t1,t3),(t2,t4)),((t5,t7),(t6,t8)))r;"),
            name="shuffled",
            f=4,
        )
        yield store


class TestAnalyticsRoundTrip:
    def test_request_round_trips(self):
        for request in (
            AnalyticsRequest.compare("a", "b"),
            AnalyticsRequest.distance_matrix("a", "b", "c"),
            AnalyticsRequest.consensus("α", "b", threshold=0.75),
            AnalyticsRequest.consensus("a", strict=True, threshold=0.0),
        ):
            decoded = wire.decode_analytics_request(
                over_json(wire.encode_analytics_request(request))
            )
            assert decoded == request

    def test_decoded_request_is_revalidated(self):
        payload = over_json(
            wire.encode_analytics_request(AnalyticsRequest.compare("a", "b"))
        )
        payload["trees"] = ["only"]
        with pytest.raises(QueryError):
            wire.decode_analytics_request(payload)
        payload["operation"] = "blend"
        with pytest.raises(QueryError):
            wire.decode_analytics_request(payload)

    def test_request_shape_errors_are_protocol_errors(self):
        good = over_json(
            wire.encode_analytics_request(AnalyticsRequest.compare("a", "b"))
        )
        for key, bad in (("operation", 3), ("threshold", "half"),
                         ("threshold", True)):
            payload = dict(good)
            payload[key] = bad
            with pytest.raises(ProtocolError):
                wire.decode_analytics_request(payload)
        with pytest.raises(ProtocolError):
            wire.decode_analytics_request("not a mapping")

    def test_compare_result_round_trips(self, analytics_store):
        result = analytics_store.analyze(
            AnalyticsRequest.compare("bush", "shuffled")
        )
        decoded = wire.decode_analytics_result(
            over_json(wire.encode_analytics_result(result))
        )
        assert decoded.request == result.request
        assert decoded.comparison == result.comparison
        assert decoded.shared_clusters == result.shared_clusters
        assert decoded.matrix is None and decoded.consensus is None

    def test_matrix_result_round_trips(self, analytics_store):
        result = analytics_store.analyze(
            AnalyticsRequest.distance_matrix("ladder", "bush", "shuffled")
        )
        decoded = wire.decode_analytics_result(
            over_json(wire.encode_analytics_result(result))
        )
        assert decoded.matrix == result.matrix
        assert all(
            type(cell) is int for row in decoded.matrix for cell in row
        )

    def test_consensus_result_round_trips(self, analytics_store):
        result = analytics_store.analyze(
            AnalyticsRequest.consensus("ladder", "bush", "shuffled")
        )
        decoded = wire.decode_analytics_result(
            over_json(wire.encode_analytics_result(result))
        )
        assert write_newick(decoded.consensus) == write_newick(
            result.consensus
        )
        assert decoded.support == dict(result.support)

    def test_malformed_result_fields_are_protocol_errors(
        self, analytics_store
    ):
        result = analytics_store.analyze(
            AnalyticsRequest.consensus("ladder", "bush")
        )
        good = over_json(wire.encode_analytics_result(result))
        for key, bad in (
            ("duration_ms", "fast"),
            ("support", [["cluster", "not-a-list"], 0.5]),
            ("support", [[["a"], "half"]]),
            ("matrix", [["1"]]),
            ("matrix", [[True]]),
            ("shared_clusters", True),
        ):
            payload = over_json(good)
            payload[key] = bad
            with pytest.raises(ProtocolError):
                wire.decode_analytics_result(payload)

    def test_future_analytics_payloads_rejected(self):
        request = AnalyticsRequest.compare("a", "b")
        payload = over_json(wire.encode_analytics_request(request))
        payload["protocol"] = wire.PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError):
            wire.decode_analytics_request(payload)


class TestCatalogueAndReports:
    def test_tree_info_round_trips(self, stored_store):
        info = stored_store.describe("fig1-sample")
        assert wire.decode_tree_info(
            over_json(wire.encode_tree_info(info))
        ) == info

    def test_report_round_trips(self):
        report = IntegrityReport("gold", problems=["block 3 broke", "läuft"])
        decoded = wire.decode_report(over_json(wire.encode_report(report)))
        assert decoded.tree_name == report.tree_name
        assert decoded.problems == report.problems
        assert not decoded.ok


class TestErrorRoundTrip:
    ALL_ERRORS = sorted(wire.ERROR_KINDS)

    def test_registry_covers_the_hierarchy(self):
        assert set(self.ALL_ERRORS) == {
            name
            for name, cls in vars(errors_module).items()
            if isinstance(cls, type) and issubclass(cls, CrimsonError)
        }

    @pytest.mark.parametrize("kind", ALL_ERRORS)
    def test_every_kind_round_trips(self, kind):
        error = wire.ERROR_KINDS[kind]("something Δroke")
        decoded = wire.decode_error(over_json(wire.encode_error(error)))
        assert type(decoded) is wire.ERROR_KINDS[kind]
        assert str(decoded) == "something Δroke"

    def test_unhashable_kind_is_protocol_error(self):
        payload = wire.stamp({"kind": ["QueryError"], "message": "x"})
        with pytest.raises(ProtocolError, match="'kind' must be a string"):
            wire.decode_error(payload)

    def test_unknown_kind_decodes_as_base_error(self):
        payload = wire.stamp({"kind": "FutureError", "message": "hm"})
        decoded = wire.decode_error(payload)
        assert type(decoded) is CrimsonError

    def test_foreign_exception_encodes_as_base_error(self):
        payload = wire.encode_error(ValueError("out of range"))
        assert payload["kind"] == "CrimsonError"
        assert "ValueError" in payload["message"]
        assert "out of range" in payload["message"]


class TestProtocolVersionGate:
    def future(self, payload):
        payload = dict(payload)
        payload["protocol"] = wire.PROTOCOL_VERSION + 1
        return payload

    def test_future_request_rejected(self):
        payload = self.future(
            wire.encode_request(QueryRequest.lca("t", "a", "b"))
        )
        with pytest.raises(ProtocolError, match="speaks protocol"):
            wire.decode_request(payload)

    def test_future_result_rejected(self, ):
        result = QueryResult(
            request=QueryRequest.lca("t", "a", "b"), duration_ms=0.0
        )
        with pytest.raises(ProtocolError, match="speaks protocol"):
            wire.decode_result(self.future(wire.encode_result(result)))

    def test_future_error_rejected(self):
        payload = self.future(wire.encode_error(StorageError("x")))
        with pytest.raises(ProtocolError):
            wire.decode_error(payload)

    def test_missing_stamp_rejected(self):
        with pytest.raises(ProtocolError):
            wire.decode_request(
                {"operation": "lca", "tree": "t", "taxa": ["a", "b"]}
            )

    def test_protocol_error_is_a_crimson_error(self):
        # The CLI and clients catch CrimsonError; version skew must land
        # in the same net.
        assert issubclass(ProtocolError, CrimsonError)
