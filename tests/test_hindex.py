"""Unit tests for the hierarchical (layered) index."""

from __future__ import annotations

import pytest

from repro.core.hindex import HierarchicalIndex
from repro.errors import QueryError
from repro.trees.build import balanced, caterpillar
from repro.trees.node import Node
from repro.trees.traversal import naive_lca
from repro.trees.tree import PhyloTree


class TestConstruction:
    def test_invalid_bound(self, fig1):
        with pytest.raises(QueryError):
            HierarchicalIndex(fig1, 0)

    def test_shallow_tree_single_layer(self, fig1):
        index = HierarchicalIndex(fig1, 10)
        assert index.n_layers == 1
        assert index.n_blocks() == 1

    def test_deep_tree_multiple_layers(self):
        index = HierarchicalIndex(caterpillar(100), 4)
        assert index.n_layers >= 3

    def test_label_bound_holds_across_layers(self):
        for f in (1, 2, 4, 8):
            index = HierarchicalIndex(caterpillar(60), f)
            assert index.max_label_length() <= f

    def test_layer_summary_shape(self):
        index = HierarchicalIndex(caterpillar(40), 3)
        summary = index.layer_summary()
        assert len(summary) == index.n_layers
        assert summary[-1]["blocks"] == 1  # top layer is a single block
        assert sum(row["blocks"] for row in summary) == index.n_blocks()

    def test_single_node_tree(self):
        tree = PhyloTree(Node("only"))
        index = HierarchicalIndex(tree, 2)
        assert index.n_layers == 1
        assert index.lca(tree.root, tree.root) is tree.root

    def test_repr(self, fig1):
        assert "HierarchicalIndex" in repr(HierarchicalIndex(fig1, 2))


class TestLabels:
    def test_canonical_label_bounded(self):
        tree = caterpillar(64)
        index = HierarchicalIndex(tree, 4)
        for node in tree.preorder():
            _block, label = index.label_of(node)
            assert len(label) <= 4

    def test_describe_label(self, fig1):
        index = HierarchicalIndex(fig1, 2)
        assert index.describe_label(fig1.find("x")) == "0:2.1"
        assert index.describe_label(fig1.root) == "0:ε"

    def test_foreign_node_raises(self, fig1):
        index = HierarchicalIndex(fig1, 2)
        with pytest.raises(QueryError):
            index.inode_of(Node("alien"))

    def test_total_label_bytes_bounded_on_deep_trees(self):
        """The headline storage claim: layered label bytes grow linearly
        with tree size even on a chain, unlike plain Dewey."""
        from repro.core.dewey import DeweyIndex

        tree = caterpillar(400)
        layered = HierarchicalIndex(tree, 8).total_label_bytes()
        plain = DeweyIndex(tree).total_label_bytes()
        assert layered < plain / 10


class TestLcaCorrectness:
    @pytest.mark.parametrize("f", [1, 2, 3, 8])
    def test_all_pairs_on_fig1(self, fig1, f):
        index = HierarchicalIndex(fig1, f)
        nodes = list(fig1.preorder())
        for a in nodes:
            for b in nodes:
                assert index.lca(a, b) is naive_lca(a, b)

    @pytest.mark.parametrize("f", [2, 3, 5])
    def test_all_pairs_on_caterpillar(self, f):
        tree = caterpillar(24)
        index = HierarchicalIndex(tree, f)
        nodes = list(tree.preorder())
        for a in nodes[::2]:
            for b in nodes[::3]:
                assert index.lca(a, b) is naive_lca(a, b)

    @pytest.mark.parametrize("f", [2, 4])
    def test_all_pairs_on_balanced(self, f):
        tree = balanced(4)
        index = HierarchicalIndex(tree, f)
        nodes = list(tree.preorder())
        for a in nodes[::2]:
            for b in nodes[::3]:
                assert index.lca(a, b) is naive_lca(a, b)

    def test_random_trees_against_naive(self, random_tree_factory):
        for seed in range(8):
            tree = random_tree_factory(60, seed)
            index = HierarchicalIndex(tree, 1 + seed % 4)
            nodes = list(tree.preorder())
            for a in nodes[::5]:
                for b in nodes[::7]:
                    assert index.lca(a, b) is naive_lca(a, b)

    def test_lca_of_node_with_itself(self, fig1):
        index = HierarchicalIndex(fig1, 2)
        for node in fig1.preorder():
            assert index.lca(node, node) is node

    def test_lca_symmetry(self, fig1):
        index = HierarchicalIndex(fig1, 2)
        nodes = list(fig1.preorder())
        for a in nodes:
            for b in nodes:
                assert index.lca(a, b) is index.lca(b, a)

    def test_lca_many(self, fig1):
        index = HierarchicalIndex(fig1, 2)
        assert index.lca_many([fig1.find("Lla")]) is fig1.find("Lla")
        assert (
            index.lca_many([fig1.find("Lla"), fig1.find("Spy"), fig1.find("Bha")])
            is fig1.find("A")
        )

    def test_lca_many_empty_raises(self, fig1):
        with pytest.raises(QueryError):
            HierarchicalIndex(fig1, 2).lca_many([])

    def test_is_ancestor_or_self(self, fig1):
        index = HierarchicalIndex(fig1, 2)
        assert index.is_ancestor_or_self(fig1.root, fig1.find("Spy"))
        assert index.is_ancestor_or_self(fig1.find("Spy"), fig1.find("Spy"))
        assert not index.is_ancestor_or_self(fig1.find("Spy"), fig1.root)


class TestVeryDeepTree:
    def test_ten_thousand_level_chain(self):
        """Million-level trees are the paper's motivation; a 10k chain
        must index and answer LCA instantly with tiny labels."""
        tree = caterpillar(10000)
        index = HierarchicalIndex(tree, 8)
        assert index.max_label_length() <= 8
        leaves = list(tree.root.leaves())
        first, last = leaves[0], leaves[-1]
        assert index.lca(first, last) is naive_lca(first, last)
