"""Stored-tree analytics: differential identity with the in-memory path.

The subsystem's contract is exact: every number computed from stored
rows — clusters, bipartitions, Robinson–Foulds figures, distance
matrices, consensus topologies and supports — must equal what the
in-memory references (:mod:`repro.benchmark.metrics`,
:mod:`repro.benchmark.consensus`) produce on the same materialized
trees, including error behaviour on the edges (single-tree profiles,
disjoint leaf sets, unnamed/duplicate leaves, threshold boundaries).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytics import (
    compare_stored,
    rf_matrix,
    stored_bipartitions,
    stored_clusters,
    stored_consensus,
    stored_leaf_names,
)
from repro.benchmark.consensus import (
    majority_rule_consensus,
    strict_consensus,
)
from repro.benchmark.metrics import (
    bipartitions,
    clusters,
    compare_splits,
    robinson_foulds,
)
from repro.errors import CrimsonError, QueryError, StorageError
from repro.reconstruction.random_tree import random_topology
from repro.reconstruction.rearrange import perturb
from repro.storage.api import (
    AnalyticsRequest,
    AnalyticsResult,
    CrimsonSession,
)
from repro.storage.store import CrimsonStore
from repro.trees.build import balanced, caterpillar, sample_tree
from repro.trees.newick import write_newick
from repro.trees.node import Node
from repro.trees.tree import PhyloTree

N_PROFILE = 8


@pytest.fixture(scope="module")
def profile():
    """A profile of same-leaf-set trees: a base topology plus SPR noise."""
    rng = np.random.default_rng(2006)
    names = [f"s{i:02d}" for i in range(18)]
    base = random_topology(names, rng)
    return [base] + [perturb(base, 2, rng) for _ in range(N_PROFILE - 1)]


@pytest.fixture(scope="module")
def store(profile):
    store = CrimsonStore.open()
    for index, tree in enumerate(profile):
        store.load_tree(tree, name=f"rep{index}", f=4)
    store.load_tree(sample_tree(), name="fig1", f=2)
    store.load_tree(caterpillar(40), name="deep", f=4)
    store.load_tree(balanced(4), name="wide", f=8)
    yield store
    store.close()


@pytest.fixture(scope="module")
def handles(store):
    return [store.open_tree(f"rep{index}") for index in range(N_PROFILE)]


class TestExtractionMatchesInMemory:
    SHAPES = ["fig1", "deep", "wide", "rep0", "rep3"]

    @pytest.mark.parametrize("name", SHAPES)
    def test_clusters_identical(self, store, name):
        handle = store.open_tree(name)
        tree = handle.fetch_tree()
        assert stored_clusters(handle) == clusters(tree)
        assert stored_clusters(handle, include_trivial=True) == clusters(
            tree, include_trivial=True
        )

    @pytest.mark.parametrize("name", SHAPES)
    def test_bipartitions_identical(self, store, name):
        handle = store.open_tree(name)
        assert stored_bipartitions(handle) == bipartitions(
            handle.fetch_tree()
        )

    @pytest.mark.parametrize("name", SHAPES)
    def test_leaf_names_identical(self, store, name):
        handle = store.open_tree(name)
        assert stored_leaf_names(handle) == handle.fetch_tree().leaf_names()

    def test_unnamed_leaf_raises_like_in_memory(self, store):
        root = Node("r")
        root.new_child("a", 1.0)
        root.add_child(Node(None, 1.0))  # an unnamed leaf
        # The loader's validation refuses such trees; store directly to
        # prove the extraction itself mirrors the in-memory error.
        handle = store.trees.store_tree(PhyloTree(root), name="unnamed")
        with pytest.raises(QueryError, match="unnamed leaves"):
            stored_clusters(handle)
        # The in-memory path refuses too (via leaf_names' structural
        # check); both surface as typed CrimsonErrors.
        with pytest.raises(CrimsonError, match="unnamed leaf"):
            clusters(handle.fetch_tree())

    def test_duplicate_leaves_raise_for_splits_only(self, store):
        root = Node("r")
        inner = root.new_child(None, 1.0)
        inner.new_child("dup", 1.0)
        inner.new_child("other", 1.0)
        root.new_child("dup", 1.0)
        handle = store.trees.store_tree(PhyloTree(root), name="dupes")
        with pytest.raises(QueryError, match="duplicate leaf names"):
            stored_bipartitions(handle)
        # Rooted clusters tolerate duplicates, exactly like in-memory.
        assert stored_clusters(handle) == clusters(handle.fetch_tree())

    def test_warm_repeat_extraction_is_sql_free(self, store):
        handle = store.open_tree("rep0")
        stored_clusters(handle)
        with store.db.count_statements() as counter:
            stored_clusters(handle)
            stored_bipartitions(handle)
        assert counter.count == 0


class TestCompareMatchesInMemory:
    def test_pairwise_figures_identical(self, store, profile):
        for other in range(1, N_PROFILE):
            outcome = compare_stored(
                store.open_tree("rep0"), store.open_tree(f"rep{other}")
            )
            assert outcome.splits == compare_splits(
                profile[0], profile[other]
            )
            assert outcome.shared_clusters == len(
                clusters(profile[0]) & clusters(profile[other])
            )
            assert outcome.rf_distance == robinson_foulds(
                profile[0], profile[other]
            )

    def test_cluster_counts_reported(self, store, profile):
        outcome = compare_stored(
            store.open_tree("rep0"), store.open_tree("rep1")
        )
        assert outcome.n_clusters_a == len(clusters(profile[0]))
        assert outcome.n_clusters_b == len(clusters(profile[1]))

    def test_matrix_matches_pairwise_rf(self, handles, profile):
        matrix = rf_matrix(handles)
        for i in range(N_PROFILE):
            assert matrix[i][i] == 0
            for j in range(N_PROFILE):
                assert matrix[i][j] == matrix[j][i]
                assert matrix[i][j] == robinson_foulds(
                    profile[i], profile[j]
                )

    def test_disjoint_leaf_sets_raise_typed_error(self, store):
        message = "different leaf sets"
        with pytest.raises(QueryError, match=message):
            compare_stored(store.open_tree("rep0"), store.open_tree("fig1"))
        with pytest.raises(QueryError, match=message):
            rf_matrix([store.open_tree("rep0"), store.open_tree("fig1")])
        # In-memory raises the same way on the same trees.
        with pytest.raises(QueryError, match=message):
            compare_splits(
                store.open_tree("rep0").fetch_tree(),
                store.open_tree("fig1").fetch_tree(),
            )


class TestConsensusMatchesInMemory:
    def test_majority_topology_and_support_identical(self, handles, profile):
        tree_stored, support_stored = stored_consensus(handles)
        tree_memory, support_memory = majority_rule_consensus(profile)
        assert write_newick(tree_stored) == write_newick(tree_memory)
        assert support_stored == support_memory

    @pytest.mark.parametrize("threshold", [0.5, 0.75, 1.0])
    def test_thresholds_identical(self, handles, profile, threshold):
        tree_stored, support_stored = stored_consensus(
            handles, threshold=threshold
        )
        tree_memory, support_memory = majority_rule_consensus(
            profile, threshold=threshold
        )
        assert write_newick(tree_stored) == write_newick(tree_memory)
        assert support_stored == support_memory

    def test_strict_identical_and_differs_from_threshold_one(
        self, handles, profile
    ):
        tree_stored, support = stored_consensus(handles, strict=True)
        assert write_newick(tree_stored) == write_newick(
            strict_consensus(profile)
        )
        assert set(support.values()) <= {1.0}
        # Strict keeps unanimous clusters that a 1.0 threshold drops
        # (count > N is never true), so the two are different requests.
        threshold_tree, _ = stored_consensus(handles, threshold=1.0)
        assert len(clusters(tree_stored)) >= len(clusters(threshold_tree))

    def test_single_tree_profile(self, store, profile):
        tree_stored, support = stored_consensus([store.open_tree("rep0")])
        tree_memory, support_memory = majority_rule_consensus(profile[:1])
        assert write_newick(tree_stored) == write_newick(tree_memory)
        assert support == support_memory
        assert set(support.values()) <= {1.0}

    def test_empty_profile_raises(self):
        with pytest.raises(QueryError, match="empty tree profile"):
            stored_consensus([])

    def test_mismatched_leaf_sets_raise(self, store):
        with pytest.raises(QueryError, match="different leaf sets"):
            stored_consensus(
                [store.open_tree("rep0"), store.open_tree("deep")]
            )

    def test_bad_threshold_raises(self, handles):
        for threshold in (0.4, 1.5, -1.0):
            with pytest.raises(QueryError, match="threshold"):
                stored_consensus(handles, threshold=threshold)


class TestAnalyticsRequestValidation:
    def test_unknown_operation(self):
        with pytest.raises(QueryError, match="unknown analytics operation"):
            AnalyticsRequest(operation="blend", trees=("a", "b"))

    def test_compare_needs_exactly_two(self):
        with pytest.raises(QueryError, match="exactly two"):
            AnalyticsRequest.compare("a", "b").__class__(
                operation="compare", trees=("a",)
            )
        with pytest.raises(QueryError, match="exactly two"):
            AnalyticsRequest(operation="compare", trees=("a", "b", "c"))

    def test_matrix_needs_two(self):
        with pytest.raises(QueryError, match="at least two"):
            AnalyticsRequest.distance_matrix("only")

    def test_consensus_needs_one(self):
        with pytest.raises(QueryError, match="at least one"):
            AnalyticsRequest.consensus()

    def test_tree_names_must_be_strings(self):
        for bad in (("a", 3), (None, "b"), ("", "b"), "ab", 7):
            with pytest.raises(QueryError):
                AnalyticsRequest(operation="compare", trees=bad)

    def test_threshold_validated_at_construction(self):
        for bad in (0.4, 1.2, True, "half"):
            with pytest.raises(QueryError):
                AnalyticsRequest.consensus("a", threshold=bad)

    def test_strict_bypasses_threshold_range(self):
        request = AnalyticsRequest.consensus("a", threshold=0.0, strict=True)
        assert request.strict is True

    def test_params_shape(self):
        assert AnalyticsRequest.compare("a", "b").params() == {
            "trees": ["a", "b"]
        }
        assert AnalyticsRequest.consensus("a", threshold=0.75).params() == {
            "trees": ["a"],
            "threshold": 0.75,
            "strict": False,
        }


class TestAnalyticsResultSurface:
    def test_summary_covers_every_kind(self, store):
        trees = ["rep0", "rep1", "rep2"]
        compare = store.analyze(AnalyticsRequest.compare("rep0", "rep1"))
        assert compare.summary().startswith("RF=")
        matrix = store.analyze(AnalyticsRequest.distance_matrix(*trees))
        assert matrix.summary() == "3x3 RF matrix"
        consensus = store.analyze(AnalyticsRequest.consensus(*trees))
        assert consensus.summary().endswith("clusters")

    def test_summary_refuses_hollow_results(self):
        request = AnalyticsRequest.compare("a", "b")
        with pytest.raises(QueryError, match="carries no comparison"):
            AnalyticsResult(request=request, duration_ms=0.0).summary()
        matrix_request = AnalyticsRequest.distance_matrix("a", "b")
        with pytest.raises(QueryError, match="carries no matrix"):
            AnalyticsResult(request=matrix_request, duration_ms=0.0).summary()
        consensus_request = AnalyticsRequest.consensus("a")
        with pytest.raises(QueryError, match="carries no tree"):
            AnalyticsResult(
                request=consensus_request, duration_ms=0.0
            ).summary()

    def test_support_table_is_deterministic(self, store):
        trees = [f"rep{i}" for i in range(N_PROFILE)]
        result = store.analyze(AnalyticsRequest.consensus(*trees))
        table = result.support_table()
        assert table == sorted(table, key=lambda row: (-row[1], row[0]))
        assert all(
            isinstance(name, str) for cluster, _ in table for name in cluster
        )

    def test_empty_support_table(self):
        request = AnalyticsRequest.consensus("a")
        assert (
            AnalyticsResult(request=request, duration_ms=0.0).support_table()
            == []
        )


class TestSessionSurface:
    def test_local_session_still_satisfies_protocol(self, store):
        assert isinstance(store.session(), CrimsonSession)

    def test_named_verbs_build_the_right_requests(self, store):
        session = store.session()
        compare = session.compare("rep0", "rep1")
        assert compare.request.operation == "compare"
        matrix = session.distance_matrix(["rep0", "rep1", "rep2"])
        assert matrix.request.trees == ("rep0", "rep1", "rep2")
        consensus = session.consensus(
            ["rep0", "rep1"], threshold=0.75, strict=False
        )
        assert consensus.request.threshold == 0.75

    def test_unknown_tree_is_storage_error(self, store):
        with pytest.raises(StorageError, match="no tree named"):
            store.analyze(AnalyticsRequest.compare("rep0", "missing"))

    def test_bare_string_is_not_splatted_into_characters(self, store):
        session = store.session()
        with pytest.raises(QueryError, match="not a single string"):
            session.consensus("rep0")
        with pytest.raises(QueryError, match="not a single string"):
            session.distance_matrix("rep0")

    def test_single_scan_per_tree(self, profile):
        """compare/matrix/consensus each read every input tree once."""
        with CrimsonStore.open() as store:
            for index, tree in enumerate(profile[:4]):
                store.load_tree(tree, name=f"rep{index}", f=4)
            names = [f"rep{i}" for i in range(4)]
            # Each tree is small enough for one IN (...) chunk, and a
            # catalogue lookup accompanies each cold open_tree — so a
            # cold N-tree request costs exactly 2·N statements.
            for request, n_trees in (
                (AnalyticsRequest.consensus(*names), 4),
                (AnalyticsRequest.distance_matrix(*names), 4),
                (AnalyticsRequest.compare("rep0", "rep1"), 2),
            ):
                with CrimsonStore.open() as fresh:
                    for index, tree in enumerate(profile[:4]):
                        fresh.load_tree(tree, name=f"rep{index}", f=4)
                    with fresh.db.count_statements() as counter:
                        fresh.analyze(request)
                    assert counter.count == 2 * n_trees

    def test_recorded_analytics_land_in_history(self, profile):
        with CrimsonStore.open() as store:
            for index, tree in enumerate(profile[:3]):
                store.load_tree(tree, name=f"rep{index}")
            store.analyze(
                AnalyticsRequest.consensus("rep0", "rep1", "rep2"),
                record=True,
            )
            store.session().compare("rep0", "rep1", record=True)
            operations = [
                entry.operation for entry in store.history.recent(limit=5)
            ]
            assert operations[:2] == ["compare", "consensus"]
            entry = store.history.recent(limit=1)[0]
            assert entry.result_summary.startswith("RF=")

    def test_duration_is_measured(self, store):
        result = store.analyze(AnalyticsRequest.compare("rep0", "rep1"))
        assert result.duration_ms >= 0.0

    def test_warm_analyze_is_sql_free(self, profile):
        with CrimsonStore.open() as store:
            for index, tree in enumerate(profile):
                store.load_tree(tree, name=f"rep{index}")
            request = AnalyticsRequest.consensus(
                *[f"rep{i}" for i in range(N_PROFILE)]
            )
            store.analyze(request)
            with store.db.count_statements() as counter:
                store.analyze(request)
            assert counter.count == 0
