"""Unit tests for the Data Loader."""

from __future__ import annotations

import pytest

from repro.errors import ParseError, StorageError, TreeStructureError
from repro.storage.loader import DataLoader
from repro.storage.species_repository import SpeciesRepository

NEXUS_WITH_DATA = """#NEXUS
BEGIN TAXA;
    TAXLABELS a b c d;
END;
BEGIN CHARACTERS;
    FORMAT DATATYPE=DNA;
    MATRIX
        a ACGT
        b ACGA
        c ACCT
        d GCGT
    ;
END;
BEGIN TREES;
    TREE demo = ((a:1,b:1):0.5,(c:1,d:1):0.5);
END;
"""

NEXUS_TREES_ONLY = """#NEXUS
BEGIN TREES;
    TREE first = (a:1,b:1);
    TREE second = ((a:1,b:1):1,c:1);
END;
"""


@pytest.fixture
def loader(db):
    return DataLoader(db)


class TestNexusLoading:
    def test_load_with_species_data(self, db, loader):
        handles = loader.load_nexus_text(NEXUS_WITH_DATA)
        assert len(handles) == 1
        assert handles[0].info.name == "demo"
        species = SpeciesRepository(db)
        assert species.count(handles[0]) == 4
        assert species.sequence_of(handles[0], "c") == "ACCT"

    def test_structure_only_skips_matrix(self, db, loader):
        handles = loader.load_nexus_text(NEXUS_WITH_DATA, structure_only=True)
        assert SpeciesRepository(db).count(handles[0]) == 0

    def test_name_override(self, loader):
        handles = loader.load_nexus_text(NEXUS_WITH_DATA, name="gold")
        assert handles[0].info.name == "gold"

    def test_multiple_trees_get_suffixed_names(self, loader):
        handles = loader.load_nexus_text(NEXUS_TREES_ONLY, name="batch")
        assert [h.info.name for h in handles] == ["batch-first", "batch-second"]

    def test_multiple_trees_default_names(self, loader):
        handles = loader.load_nexus_text(NEXUS_TREES_ONLY)
        assert [h.info.name for h in handles] == ["first", "second"]

    def test_no_trees_raises(self, loader):
        with pytest.raises(ParseError):
            loader.load_nexus_text("#NEXUS\nBEGIN TAXA;\nTAXLABELS a;\nEND;\n")

    def test_duplicate_name_raises(self, loader):
        loader.load_nexus_text(NEXUS_WITH_DATA)
        with pytest.raises(StorageError):
            loader.load_nexus_text(NEXUS_WITH_DATA)

    def test_matrix_rows_for_unknown_taxa_skipped(self, db, loader):
        text = NEXUS_WITH_DATA.replace("        d GCGT", "        zz GCGT")
        messages = []
        reporting = DataLoader(db, report=messages.append)
        handles = reporting.load_nexus_text(text)
        assert SpeciesRepository(db).count(handles[0]) == 3
        assert any("skipped" in message for message in messages)

    def test_load_nexus_file(self, tmp_path, loader):
        path = tmp_path / "input.nex"
        path.write_text(NEXUS_WITH_DATA)
        handles = loader.load_nexus_file(path)
        assert handles[0].info.name == "input"


class TestNewickLoading:
    def test_load_newick_text(self, loader):
        handle = loader.load_newick_text("((a:1,b:1):1,c:2);", name="nwk")
        assert handle.info.n_leaves == 3

    def test_load_newick_file(self, tmp_path, loader):
        path = tmp_path / "tree.nwk"
        path.write_text("(a:1,b:1);")
        handle = loader.load_newick_file(path)
        assert handle.info.name == "tree"

    def test_unnamed_leaves_rejected(self, loader):
        with pytest.raises(TreeStructureError):
            loader.load_newick_text("((,a:1):1,b:1);", name="bad")


class TestInMemoryLoading:
    def test_load_tree_with_sequences(self, db, loader, fig1):
        sequences = {name: "ACGT" for name in fig1.leaf_names()}
        handle = loader.load_tree(fig1, sequences=sequences)
        assert SpeciesRepository(db).count(handle) == 5

    def test_report_callback_receives_status(self, db, fig1):
        messages = []
        loader = DataLoader(db, report=messages.append)
        loader.load_tree(fig1)
        assert any("structure only" in message for message in messages)


class TestAppendSpecies:
    def test_append_to_existing(self, db, loader):
        loader.load_nexus_text(NEXUS_WITH_DATA, structure_only=True)
        count = loader.append_species_nexus("demo", NEXUS_WITH_DATA)
        assert count == 4
        handle = loader.trees.open("demo")
        assert SpeciesRepository(db).count(handle) == 4

    def test_append_without_matrix_raises(self, loader):
        loader.load_nexus_text(NEXUS_WITH_DATA, structure_only=True)
        with pytest.raises(ParseError):
            loader.append_species_nexus("demo", NEXUS_TREES_ONLY)

    def test_append_to_unknown_tree_raises(self, loader):
        with pytest.raises(StorageError):
            loader.append_species_nexus("ghost", NEXUS_WITH_DATA)

    def test_append_conflict_needs_replace(self, loader):
        loader.load_nexus_text(NEXUS_WITH_DATA)
        with pytest.raises(StorageError):
            loader.append_species_nexus("demo", NEXUS_WITH_DATA)
        count = loader.append_species_nexus("demo", NEXUS_WITH_DATA, replace=True)
        assert count == 4
