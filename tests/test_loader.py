"""Unit tests for the Data Loader."""

from __future__ import annotations

import pytest

from repro.errors import ParseError, StorageError, TreeStructureError
from repro.storage.loader import DataLoader
from repro.storage.species_repository import SpeciesRepository

NEXUS_WITH_DATA = """#NEXUS
BEGIN TAXA;
    TAXLABELS a b c d;
END;
BEGIN CHARACTERS;
    FORMAT DATATYPE=DNA;
    MATRIX
        a ACGT
        b ACGA
        c ACCT
        d GCGT
    ;
END;
BEGIN TREES;
    TREE demo = ((a:1,b:1):0.5,(c:1,d:1):0.5);
END;
"""

NEXUS_TREES_ONLY = """#NEXUS
BEGIN TREES;
    TREE first = (a:1,b:1);
    TREE second = ((a:1,b:1):1,c:1);
END;
"""


@pytest.fixture
def loader(db):
    return DataLoader(db)


class TestNexusLoading:
    def test_load_with_species_data(self, db, loader):
        handles = loader.load_nexus_text(NEXUS_WITH_DATA)
        assert len(handles) == 1
        assert handles[0].info.name == "demo"
        species = SpeciesRepository(db)
        assert species.count(handles[0]) == 4
        assert species.sequence_of(handles[0], "c") == "ACCT"

    def test_structure_only_skips_matrix(self, db, loader):
        handles = loader.load_nexus_text(NEXUS_WITH_DATA, structure_only=True)
        assert SpeciesRepository(db).count(handles[0]) == 0

    def test_name_override(self, loader):
        handles = loader.load_nexus_text(NEXUS_WITH_DATA, name="gold")
        assert handles[0].info.name == "gold"

    def test_multiple_trees_get_suffixed_names(self, loader):
        handles = loader.load_nexus_text(NEXUS_TREES_ONLY, name="batch")
        assert [h.info.name for h in handles] == ["batch-first", "batch-second"]

    def test_multiple_trees_default_names(self, loader):
        handles = loader.load_nexus_text(NEXUS_TREES_ONLY)
        assert [h.info.name for h in handles] == ["first", "second"]

    def test_no_trees_raises(self, loader):
        with pytest.raises(ParseError):
            loader.load_nexus_text("#NEXUS\nBEGIN TAXA;\nTAXLABELS a;\nEND;\n")

    def test_duplicate_name_raises(self, loader):
        loader.load_nexus_text(NEXUS_WITH_DATA)
        with pytest.raises(StorageError):
            loader.load_nexus_text(NEXUS_WITH_DATA)

    def test_matrix_rows_for_unknown_taxa_skipped(self, db, loader):
        text = NEXUS_WITH_DATA.replace("        d GCGT", "        zz GCGT")
        messages = []
        reporting = DataLoader(db, report=messages.append)
        handles = reporting.load_nexus_text(text)
        assert SpeciesRepository(db).count(handles[0]) == 3
        assert any("skipped" in message for message in messages)

    def test_load_nexus_file(self, tmp_path, loader):
        path = tmp_path / "input.nex"
        path.write_text(NEXUS_WITH_DATA)
        handles = loader.load_nexus_file(path)
        assert handles[0].info.name == "input"


class TestMultiTreeAtomicity:
    """A failing multi-tree NEXUS load must leave no partial catalogue."""

    NEXUS_CORRUPT_SECOND = """#NEXUS
BEGIN TREES;
    TREE good = ((a:1,b:1):1,c:1);
    TREE bad = ((,x:1):1,y:1);
END;
"""

    NEXUS_TWO_GOOD = """#NEXUS
BEGIN TREES;
    TREE one = (a:1,b:1);
    TREE two = ((a:1,b:1):1,c:1);
END;
"""

    def _names(self, loader):
        return [info.name for info in loader.trees.list_trees()]

    def test_corrupt_second_tree_rolls_back_first(self, loader):
        """Regression: tree 1 must not survive a failure on tree 2."""
        with pytest.raises(TreeStructureError):
            loader.load_nexus_text(self.NEXUS_CORRUPT_SECOND)
        assert self._names(loader) == []

    def test_key_conflict_on_second_tree_rolls_back_first(self, loader):
        loader.load_newick_text("(p:1,q:1);", name="two")
        with pytest.raises(StorageError):
            loader.load_nexus_text(self.NEXUS_TWO_GOOD)
        assert self._names(loader) == ["two"]

    def test_duplicate_keys_within_document_rejected(self, loader):
        text = self.NEXUS_TWO_GOOD.replace("TREE two", "TREE one", 1)
        with pytest.raises(StorageError, match="two trees under"):
            loader.load_nexus_text(text)
        assert self._names(loader) == []

    def test_storage_failure_mid_load_compensates(self, db, monkeypatch):
        """Even a failure validation cannot foresee rolls back 1..k-1."""
        from repro.storage.tree_repository import TreeRepository

        loader = DataLoader(db)
        original = TreeRepository.store_tree
        calls = {"n": 0}

        def failing(self, tree, *args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:
                raise StorageError("disk full (injected)")
            return original(self, tree, *args, **kwargs)

        monkeypatch.setattr(TreeRepository, "store_tree", failing)
        with pytest.raises(StorageError, match="disk full"):
            loader.load_nexus_text(self.NEXUS_TWO_GOOD)
        assert self._names(loader) == []

    def test_sharded_store_rolls_back_across_shards(self, tmp_path):
        from repro.storage.store import CrimsonStore
        from repro.storage.tree_repository import TreeRepository

        with CrimsonStore.open(tmp_path / "s.db", shards=2) as store:
            original = TreeRepository.store_tree
            calls = {"n": 0}

            def failing(self, tree, *args, **kwargs):
                calls["n"] += 1
                if calls["n"] == 2:
                    raise StorageError("injected")
                return original(self, tree, *args, **kwargs)

            try:
                TreeRepository.store_tree = failing
                with pytest.raises(StorageError, match="injected"):
                    store.load_nexus_text(self.NEXUS_TWO_GOOD)
            finally:
                TreeRepository.store_tree = original
            assert store.trees.list_trees() == []
            # No shard carries orphan rows of the rolled-back tree.
            assert store.verify() == []

    def test_successful_multi_tree_load_unchanged(self, loader):
        handles = loader.load_nexus_text(self.NEXUS_TWO_GOOD)
        assert self._names(loader) == ["one", "two"]
        assert [h.info.name for h in handles] == ["one", "two"]


class TestNewickLoading:
    def test_load_newick_text(self, loader):
        handle = loader.load_newick_text("((a:1,b:1):1,c:2);", name="nwk")
        assert handle.info.n_leaves == 3

    def test_load_newick_file(self, tmp_path, loader):
        path = tmp_path / "tree.nwk"
        path.write_text("(a:1,b:1);")
        handle = loader.load_newick_file(path)
        assert handle.info.name == "tree"

    def test_unnamed_leaves_rejected(self, loader):
        with pytest.raises(TreeStructureError):
            loader.load_newick_text("((,a:1):1,b:1);", name="bad")


class TestInMemoryLoading:
    def test_load_tree_with_sequences(self, db, loader, fig1):
        sequences = {name: "ACGT" for name in fig1.leaf_names()}
        handle = loader.load_tree(fig1, sequences=sequences)
        assert SpeciesRepository(db).count(handle) == 5

    def test_report_callback_receives_status(self, db, fig1):
        messages = []
        loader = DataLoader(db, report=messages.append)
        loader.load_tree(fig1)
        assert any("structure only" in message for message in messages)


class TestAppendSpecies:
    def test_append_to_existing(self, db, loader):
        loader.load_nexus_text(NEXUS_WITH_DATA, structure_only=True)
        count = loader.append_species_nexus("demo", NEXUS_WITH_DATA)
        assert count == 4
        handle = loader.trees.open("demo")
        assert SpeciesRepository(db).count(handle) == 4

    def test_append_without_matrix_raises(self, loader):
        loader.load_nexus_text(NEXUS_WITH_DATA, structure_only=True)
        with pytest.raises(ParseError):
            loader.append_species_nexus("demo", NEXUS_TREES_ONLY)

    def test_append_to_unknown_tree_raises(self, loader):
        with pytest.raises(StorageError):
            loader.append_species_nexus("ghost", NEXUS_WITH_DATA)

    def test_append_conflict_needs_replace(self, loader):
        loader.load_nexus_text(NEXUS_WITH_DATA)
        with pytest.raises(StorageError):
            loader.append_species_nexus("demo", NEXUS_WITH_DATA)
        count = loader.append_species_nexus("demo", NEXUS_WITH_DATA, replace=True)
        assert count == 4
