"""Unit tests for PhyloTree."""

from __future__ import annotations

import pytest

from repro.errors import QueryError, TreeStructureError
from repro.trees.node import Node
from repro.trees.tree import PhyloTree, validate_tree


class TestConstruction:
    def test_rejects_parented_root(self):
        parent = Node("p")
        child = parent.new_child("c")
        with pytest.raises(TreeStructureError):
            PhyloTree(child)

    def test_copy_preserves_everything(self, fig1):
        clone = fig1.copy()
        assert clone.to_newick() == fig1.to_newick()
        assert clone.root is not fig1.root

    def test_copy_is_deep(self, fig1):
        clone = fig1.copy()
        clone.find("Lla").name = "renamed"
        assert "Lla" in fig1

    def test_from_newick(self):
        tree = PhyloTree.from_newick("((a:1,b:2):0.5,c:3);", name="demo")
        assert tree.name == "demo"
        assert set(tree.leaf_names()) == {"a", "b", "c"}


class TestLookup:
    def test_find(self, fig1):
        assert fig1.find("Lla").name == "Lla"

    def test_find_interior(self, fig1):
        assert fig1.find("x").children

    def test_find_unknown_raises(self, fig1):
        with pytest.raises(QueryError):
            fig1.find("nope")

    def test_contains(self, fig1):
        assert "Syn" in fig1
        assert "nope" not in fig1
        assert 42 not in fig1

    def test_duplicate_names_raise_on_lookup(self):
        root = Node("r")
        root.new_child("a")
        root.new_child("a")
        tree = PhyloTree(root)
        with pytest.raises(TreeStructureError):
            tree.find("a")

    def test_invalidate_caches_after_surgery(self, fig1):
        fig1.find("Lla")  # build cache
        fig1.find("x").new_child("NewLeaf", 1.0)
        fig1.invalidate_caches()
        assert fig1.find("NewLeaf").name == "NewLeaf"


class TestStatistics:
    def test_size(self, fig1):
        assert fig1.size() == 8

    def test_n_leaves(self, fig1):
        assert fig1.n_leaves() == 5

    def test_max_depth(self, fig1):
        assert fig1.max_depth() == 3

    def test_avg_leaf_depth(self, fig1):
        # Leaves: Syn(1), Lla(3), Spy(3), Bha(2), Bsu(1).
        assert fig1.avg_leaf_depth() == pytest.approx(2.0)

    def test_total_edge_length(self, fig1):
        assert fig1.total_edge_length() == pytest.approx(
            2.5 + 0.75 + 0.5 + 1.0 + 1.0 + 1.5 + 1.25
        )

    def test_depths_table(self, fig1):
        depths = fig1.depths()
        assert depths[id(fig1.root)] == 0
        assert depths[id(fig1.find("Lla"))] == 3

    def test_distances_table(self, fig1):
        distances = fig1.distances_from_root()
        assert distances[id(fig1.find("Lla"))] == pytest.approx(2.25)

    def test_single_node_tree(self):
        tree = PhyloTree(Node("only"))
        assert tree.size() == 1
        assert tree.n_leaves() == 1
        assert tree.max_depth() == 0
        assert tree.avg_leaf_depth() == 0.0


class TestPreorderRank:
    def test_root_is_zero(self, fig1):
        assert fig1.preorder_rank(fig1.root) == 0

    def test_order_matches_traversal(self, fig1):
        for rank, node in enumerate(fig1.preorder()):
            assert fig1.preorder_rank(node) == rank

    def test_foreign_node_raises(self, fig1):
        with pytest.raises(QueryError):
            fig1.preorder_rank(Node("alien"))


class TestEquality:
    def test_equal_trees(self, fig1):
        assert fig1.equals(fig1.copy())

    def test_length_difference_detected(self, fig1):
        clone = fig1.copy()
        clone.find("Lla").length += 0.5
        assert not fig1.equals(clone)
        assert fig1.equals(clone, compare_lengths=False)

    def test_order_sensitivity(self):
        a = PhyloTree.from_newick("(x:1,y:1);")
        b = PhyloTree.from_newick("(y:1,x:1);")
        assert not a.equals(b)
        assert a.topology_key() == b.topology_key()

    def test_topology_key_distinguishes_shapes(self):
        a = PhyloTree.from_newick("((x,y),z);")
        b = PhyloTree.from_newick("((x,z),y);")
        assert a.topology_key() != b.topology_key()


class TestValidation:
    def test_valid_tree_passes(self, fig1):
        validate_tree(fig1)

    def test_negative_length_rejected(self, fig1):
        fig1.find("Lla").length = -1.0
        with pytest.raises(TreeStructureError):
            validate_tree(fig1)

    def test_unnamed_leaf_rejected(self):
        root = Node("r")
        root.new_child(None, 1.0)
        root.new_child("b", 1.0)
        with pytest.raises(TreeStructureError):
            validate_tree(PhyloTree(root))

    def test_unnamed_leaf_allowed_when_not_required(self):
        root = Node("r")
        root.new_child(None, 1.0)
        root.new_child("b", 1.0)
        validate_tree(PhyloTree(root), require_leaf_names=False)

    def test_duplicate_leaf_names_rejected(self):
        root = Node("r")
        root.new_child("a", 1.0)
        root.new_child("a", 1.0)
        with pytest.raises(TreeStructureError):
            validate_tree(PhyloTree(root))

    def test_corrupted_parent_pointer_rejected(self, fig1):
        fig1.find("Lla").parent = fig1.root
        with pytest.raises(TreeStructureError):
            validate_tree(fig1)
