"""Unit tests for majority-rule consensus."""

from __future__ import annotations

import pytest

from repro.benchmark.consensus import (
    build_tree_from_clusters,
    majority_consensus_tree,
    majority_rule_consensus,
)
from repro.benchmark.metrics import clusters, same_topology
from repro.errors import QueryError
from repro.trees.newick import parse_newick


class TestMajorityRule:
    def test_unanimous_profile(self):
        tree = parse_newick("(((a,b),c),(d,e));")
        consensus = majority_consensus_tree([tree, tree.copy(), tree.copy()])
        assert same_topology(consensus, tree)

    def test_majority_wins(self):
        majority = parse_newick("(((a,b),c),d);")
        minority = parse_newick("(((a,c),b),d);")
        consensus = majority_consensus_tree(
            [majority, majority.copy(), minority]
        )
        assert frozenset({"a", "b"}) in clusters(consensus)
        assert frozenset({"a", "c"}) not in clusters(consensus)

    def test_tied_cluster_dropped(self):
        first = parse_newick("((a,b),(c,d));")
        second = parse_newick("((a,c),(b,d));")
        consensus = majority_consensus_tree([first, second])
        # Neither grouping has >50% support: the consensus is a star.
        assert clusters(consensus) == set()

    def test_support_values(self):
        majority = parse_newick("(((a,b),c),d);")
        minority = parse_newick("(((a,c),b),d);")
        _tree, support = majority_rule_consensus(
            [majority, majority.copy(), minority]
        )
        assert support[frozenset({"a", "b"})] == pytest.approx(2 / 3)

    def test_higher_threshold_is_stricter(self):
        trees = [
            parse_newick("(((a,b),c),d);"),
            parse_newick("(((a,b),c),d);"),
            parse_newick("(((a,b),d),c);"),
        ]
        half = majority_consensus_tree(trees, threshold=0.5)
        strict = majority_consensus_tree(trees, threshold=0.9)
        assert len(clusters(half)) >= len(clusters(strict))

    def test_consensus_majority_property(self):
        """Every cluster in the consensus appears in > half the inputs,
        and every cluster in > half the inputs appears in the consensus."""
        profile = [
            parse_newick("(((a,b),c),(d,e));"),
            parse_newick("(((a,b),d),(c,e));"),
            parse_newick("(((a,b),c),(d,e));"),
        ]
        consensus = majority_consensus_tree(profile)
        consensus_clusters = clusters(consensus)
        from collections import Counter

        counts: Counter = Counter()
        for tree in profile:
            counts.update(clusters(tree))
        majority_clusters = {
            cluster
            for cluster, count in counts.items()
            if count > len(profile) / 2
        }
        assert consensus_clusters == majority_clusters

    def test_empty_profile_raises(self):
        with pytest.raises(QueryError):
            majority_consensus_tree([])

    def test_mismatched_leafsets_raise(self):
        with pytest.raises(QueryError):
            majority_consensus_tree(
                [parse_newick("(a,b);"), parse_newick("(a,c);")]
            )

    def test_low_threshold_rejected(self):
        tree = parse_newick("((a,b),c);")
        with pytest.raises(QueryError):
            majority_consensus_tree([tree], threshold=0.3)

    def test_leafset_preserved(self):
        profile = [
            parse_newick("((a,b),(c,d));"),
            parse_newick("((a,c),(b,d));"),
            parse_newick("((a,d),(b,c));"),
        ]
        consensus = majority_consensus_tree(profile)
        assert set(consensus.leaf_names()) == {"a", "b", "c", "d"}


class TestBuildFromClusters:
    def test_nested_clusters(self):
        tree = build_tree_from_clusters(
            ["a", "b", "c", "d"],
            [frozenset({"a", "b"}), frozenset({"a", "b", "c"})],
        )
        assert same_topology(tree, parse_newick("(((a,b),c),d);"))

    def test_no_clusters_gives_star(self):
        tree = build_tree_from_clusters(["a", "b", "c"], [])
        assert len(tree.root.children) == 3

    def test_incompatible_clusters_raise(self):
        with pytest.raises(QueryError):
            build_tree_from_clusters(
                ["a", "b", "c"],
                [frozenset({"a", "b"}), frozenset({"b", "c"})],
            )
