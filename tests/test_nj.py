"""Unit tests for Neighbor-Joining."""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchmark.metrics import normalized_rf, robinson_foulds
from repro.errors import ReconstructionError
from repro.reconstruction.distances import (
    DistanceMatrix,
    distance_matrix,
    tree_distance_matrix,
)
from repro.reconstruction.nj import neighbor_joining
from repro.simulation.birth_death import yule_tree
from repro.simulation.models import jc69
from repro.simulation.seqgen import evolve_sequences
from repro.trees.tree import validate_tree


class TestSmallCases:
    def test_two_taxa(self):
        matrix = DistanceMatrix(["a", "b"], np.array([[0.0, 3.0], [3.0, 0.0]]))
        tree = neighbor_joining(matrix)
        assert sorted(tree.leaf_names()) == ["a", "b"]
        assert tree.find("a").length + tree.find("b").length == pytest.approx(3.0)

    def test_three_taxa_limb_lengths(self):
        values = np.array(
            [[0.0, 3.0, 4.0], [3.0, 0.0, 5.0], [4.0, 5.0, 0.0]]
        )
        tree = neighbor_joining(DistanceMatrix(["a", "b", "c"], values))
        # Classic three-point formulas: a=(3+4-5)/2=1, b=(3+5-4)/2=2, c=3.
        assert tree.find("a").length == pytest.approx(1.0)
        assert tree.find("b").length == pytest.approx(2.0)
        assert tree.find("c").length == pytest.approx(3.0)

    def test_single_taxon_raises(self):
        with pytest.raises(ReconstructionError):
            neighbor_joining(DistanceMatrix(["a"], np.zeros((1, 1))))

    def test_structure_valid(self, rng):
        matrix = tree_distance_matrix(yule_tree(9, rng=rng))
        validate_tree(neighbor_joining(matrix), require_leaf_names=False)


class TestAdditiveRecovery:
    """On an additive (tree) metric NJ is exact — the defining guarantee."""

    @pytest.mark.parametrize("n_leaves", [4, 6, 10, 16, 25])
    def test_recovers_yule_topology(self, n_leaves):
        rng = np.random.default_rng(n_leaves)
        truth = yule_tree(n_leaves, rng=rng)
        matrix = tree_distance_matrix(truth)
        estimate = neighbor_joining(matrix)
        assert robinson_foulds(truth, estimate) == 0

    def test_recovers_path_lengths(self, rng):
        truth = yule_tree(12, rng=rng)
        matrix = tree_distance_matrix(truth)
        estimate = neighbor_joining(matrix)
        recovered = tree_distance_matrix(estimate).submatrix(matrix.names)
        assert np.allclose(recovered.values, matrix.values, atol=1e-9)

    def test_nonclock_additive_matrix(self):
        """NJ handles rate variation across lineages (where UPGMA fails):
        an additive but non-ultrametric matrix is still recovered."""
        from repro.trees.newick import parse_newick

        truth = parse_newick("((a:0.1,b:2.0):0.3,(c:0.5,d:0.05):1.1);")
        matrix = tree_distance_matrix(truth)
        estimate = neighbor_joining(matrix)
        assert robinson_foulds(truth, estimate) == 0


class TestOnSequences:
    def test_close_to_truth_on_long_sequences(self):
        rng = np.random.default_rng(5)
        truth = yule_tree(14, rng=rng)
        sequences = evolve_sequences(truth, jc69(), 4000, rng=rng, scale=0.3)
        estimate = neighbor_joining(distance_matrix(sequences, "jc69"))
        assert normalized_rf(truth, estimate) <= 0.2

    def test_negative_branch_estimates_clamped(self):
        rng = np.random.default_rng(6)
        truth = yule_tree(10, rng=rng)
        sequences = evolve_sequences(truth, jc69(), 200, rng=rng, scale=0.05)
        estimate = neighbor_joining(distance_matrix(sequences, "jc69"))
        for node in estimate.preorder():
            assert node.length >= 0.0
