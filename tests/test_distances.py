"""Unit tests for distance computations."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ReconstructionError
from repro.reconstruction.distances import (
    DistanceMatrix,
    SATURATION_CAP,
    distance_matrix,
    jc69_distance,
    k2p_distance,
    p_distance,
    tree_distance_matrix,
)
from repro.trees.build import sample_tree


class TestPDistance:
    def test_identical(self):
        assert p_distance("ACGT", "ACGT") == 0.0

    def test_all_different(self):
        assert p_distance("AAAA", "CCCC") == 1.0

    def test_half(self):
        assert p_distance("AACC", "AATT") == 0.5

    def test_unequal_lengths_raise(self):
        with pytest.raises(ReconstructionError):
            p_distance("ACG", "AC")

    def test_empty_raises(self):
        with pytest.raises(ReconstructionError):
            p_distance("", "")


class TestJc69Correction:
    def test_zero_for_identical(self):
        assert jc69_distance("ACGT", "ACGT") == 0.0

    def test_formula(self):
        p = 0.25
        sequence_a = "A" * 75 + "C" * 25
        sequence_b = "A" * 75 + "G" * 25
        expected = -0.75 * math.log(1 - 4 * p / 3)
        assert jc69_distance(sequence_a, sequence_b) == pytest.approx(expected)

    def test_correction_exceeds_p(self):
        sequence_a = "A" * 80 + "C" * 20
        sequence_b = "A" * 80 + "G" * 20
        assert jc69_distance(sequence_a, sequence_b) > p_distance(
            sequence_a, sequence_b
        )

    def test_saturation_capped(self):
        assert jc69_distance("AAAA", "CCCC") == SATURATION_CAP


class TestK2pCorrection:
    def test_zero_for_identical(self):
        assert k2p_distance("ACGT", "ACGT") == 0.0

    def test_pure_transitions_formula(self):
        # 20% transitions (A<->G), no transversions.
        sequence_a = "A" * 100
        sequence_b = "G" * 20 + "A" * 80
        p, q = 0.2, 0.0
        expected = -0.5 * math.log((1 - 2 * p - q) * math.sqrt(1 - 2 * q))
        assert k2p_distance(sequence_a, sequence_b) == pytest.approx(expected)

    def test_equals_jc_for_balanced_changes(self):
        """With transitions:transversions in 1:2 ratio (the JC regime),
        K2P and JC agree closely."""
        sequence_a = "A" * 300
        sequence_b = "G" * 20 + "C" * 20 + "T" * 20 + "A" * 240
        assert k2p_distance(sequence_a, sequence_b) == pytest.approx(
            jc69_distance(sequence_a, sequence_b), rel=0.02
        )

    def test_saturation_capped(self):
        assert k2p_distance("AAAA", "GGGG") == SATURATION_CAP


class TestDistanceMatrix:
    def test_validation_rejects_asymmetry(self):
        with pytest.raises(ReconstructionError):
            DistanceMatrix(["a", "b"], np.array([[0.0, 1.0], [2.0, 0.0]]))

    def test_validation_rejects_nonzero_diagonal(self):
        with pytest.raises(ReconstructionError):
            DistanceMatrix(["a", "b"], np.array([[1.0, 1.0], [1.0, 0.0]]))

    def test_validation_rejects_negative(self):
        with pytest.raises(ReconstructionError):
            DistanceMatrix(["a", "b"], np.array([[0.0, -1.0], [-1.0, 0.0]]))

    def test_validation_rejects_shape_mismatch(self):
        with pytest.raises(ReconstructionError):
            DistanceMatrix(["a", "b", "c"], np.zeros((2, 2)))

    def test_get_by_name(self):
        matrix = DistanceMatrix(
            ["a", "b"], np.array([[0.0, 2.5], [2.5, 0.0]])
        )
        assert matrix.get("a", "b") == 2.5

    def test_submatrix(self):
        values = np.array(
            [[0.0, 1.0, 2.0], [1.0, 0.0, 3.0], [2.0, 3.0, 0.0]]
        )
        matrix = DistanceMatrix(["a", "b", "c"], values)
        sub = matrix.submatrix(["c", "a"])
        assert sub.names == ["c", "a"]
        assert sub.get("c", "a") == 2.0

    def test_submatrix_unknown_raises(self):
        matrix = DistanceMatrix(["a", "b"], np.zeros((2, 2)))
        with pytest.raises(ReconstructionError):
            matrix.submatrix(["a", "ghost"])


class TestMatrixConstruction:
    SEQUENCES = {"a": "AAAA", "b": "AAAC", "c": "AACC"}

    def test_p_matrix(self):
        matrix = distance_matrix(self.SEQUENCES, "p")
        assert matrix.get("a", "b") == 0.25
        assert matrix.get("a", "c") == 0.5

    def test_unknown_correction(self):
        with pytest.raises(ReconstructionError):
            distance_matrix(self.SEQUENCES, "hamming")

    def test_single_taxon_raises(self):
        with pytest.raises(ReconstructionError):
            distance_matrix({"a": "ACGT"})

    def test_misaligned_raises(self):
        with pytest.raises(ReconstructionError):
            distance_matrix({"a": "ACGT", "b": "AC"})


class TestTreeDistanceMatrix:
    def test_fig1_path_lengths(self):
        matrix = tree_distance_matrix(sample_tree())
        assert matrix.get("Lla", "Spy") == pytest.approx(2.0)
        assert matrix.get("Lla", "Bha") == pytest.approx(1.5 + 1.5)
        assert matrix.get("Syn", "Bsu") == pytest.approx(2.5 + 1.25)
        assert matrix.get("Lla", "Syn") == pytest.approx(2.25 + 2.5)

    def test_metric_axioms(self):
        matrix = tree_distance_matrix(sample_tree())
        n = matrix.n
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert (
                        matrix.values[i, j]
                        <= matrix.values[i, k] + matrix.values[k, j] + 1e-9
                    )
