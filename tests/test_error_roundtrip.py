"""Registry audit: every CrimsonError kind round-trips a live server.

The wire codec re-raises errors client-side by class name, looked up in
``storage/wire.py``'s ``ERROR_KINDS``.  Two ways that can silently rot:
a class added to ``errors.py`` but missing from the registry (decodes
as the base ``CrimsonError``), or a registry entry with no class.  The
static ``errors-registry`` lint rule guards the source shape; these
tests guard the runtime behaviour, kind by kind, over a real socket.
"""

from __future__ import annotations

import pytest

from repro import errors as errors_module
from repro.errors import CrimsonError
from repro.server import CrimsonServer, RemoteSession
from repro.storage import wire
from repro.storage.store import CrimsonStore
from repro.trees.build import sample_tree


def registered_error_classes() -> dict[str, type]:
    """Every CrimsonError subclass (plus the root) defined in errors.py."""
    return {
        name: obj
        for name, obj in vars(errors_module).items()
        if isinstance(obj, type) and issubclass(obj, CrimsonError)
    }


def test_wire_registry_carries_every_error_class():
    assert wire.ERROR_KINDS == registered_error_classes()


def test_every_kind_is_instantiable_from_a_message_alone():
    # decode_error builds each kind as cls(message): a subclass that
    # grew a second required argument would break decoding.
    for name, cls in sorted(wire.ERROR_KINDS.items()):
        error = cls(f"synthetic {name}")
        assert isinstance(error, CrimsonError)
        assert f"synthetic {name}" in str(error)


def test_each_registered_kind_reraises_client_side(tmp_path):
    path = str(tmp_path / "kinds.db")
    with CrimsonStore.open(path, readers=2) as store:
        store.trees.store_tree(sample_tree(), f=2)
        with CrimsonServer(store, port=0) as server:
            host, port = server.address
            with RemoteSession(host, port) as session:
                for name, cls in sorted(wire.ERROR_KINDS.items()):
                    probe = cls(f"synthetic {name}")

                    def explode(_tree_name, _probe=probe):
                        raise _probe

                    # The server's describe verb calls store.describe:
                    # shadow it on the instance so this exact error
                    # object travels the wire.
                    store.describe = explode
                    try:
                        with pytest.raises(CrimsonError) as caught:
                            session.describe("fig1-sample")
                    finally:
                        del store.describe
                    assert type(caught.value) is cls
                    assert f"synthetic {name}" in str(caught.value)
                # The shim is gone: the verb answers normally again.
                assert session.describe("fig1-sample").name == "fig1-sample"
