"""Shared fixtures: the paper's example tree, random trees, databases."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.storage.database import CrimsonDatabase
from repro.trees.build import sample_tree
from repro.trees.node import Node
from repro.trees.tree import PhyloTree


@pytest.fixture
def fig1():
    """The Crimson paper's Figure-1 tree."""
    return sample_tree()


@pytest.fixture
def db():
    """An in-memory Crimson database, closed after the test."""
    database = CrimsonDatabase()
    yield database
    database.close()


@pytest.fixture
def sanitized(monkeypatch):
    """Turn on the runtime connection sanitizer for this test.

    Databases opened while the fixture is active wrap their sqlite
    connections in thread-affinity + statement-counting proxies (see
    :mod:`repro.storage.sanitize`), so the test can assert — via
    ``statement_budget`` — that warm paths stay off the database and
    that pooled readers are only used by threads that checked them out.
    """
    monkeypatch.setenv("CRIMSON_SANITIZE", "1")


def make_random_tree(
    n_nodes: int, seed: int, max_children: int = 4, name_prefix: str = "L"
) -> PhyloTree:
    """Deterministic random tree with every node named (uniform attachment).

    Shared by unit tests that need arbitrary shapes without hypothesis.
    """
    rng = random.Random(seed)
    root = Node(f"{name_prefix}0")
    nodes = [root]
    for index in range(1, n_nodes):
        eligible = [n for n in nodes if len(n.children) < max_children]
        parent = rng.choice(eligible or nodes)
        child = Node(f"{name_prefix}{index}", rng.random() * 2.0)
        parent.add_child(child)
        nodes.append(child)
    return PhyloTree(root)


@pytest.fixture
def random_tree_factory():
    return make_random_tree


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
