"""Admission control: estimation, quotas, backpressure, streaming.

The subsystem's contract has four load-bearing pieces, each covered
here: the estimator predicts cost from catalogue stats and live cache
state without executing SQL (warm handles estimate cheaper than cold
ones); the controller refuses over-budget, over-quota, and over-
concurrent work with typed :class:`ResourceError`\\ s that carry their
context across the wire; the ``estimate`` verb answers identically on
local and remote sessions; and ``crimson serve`` both streams
oversized results in chunks and drains gracefully on SIGINT/SIGTERM.
"""

from __future__ import annotations

import io
import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.admission import (
    BATCH_CHUNK,
    MAX_TRACKED_SESSIONS,
    AdmissionController,
    AdmissionLimits,
    CostEstimate,
    estimate_query,
)
from repro.errors import ProtocolError, ResourceError, StorageError
from repro.server import CrimsonServer, RemoteSession, protocol
from repro.storage import engine, wire
from repro.storage.api import AnalyticsRequest, QueryRequest
from repro.storage.store import CrimsonStore
from repro.trees.build import caterpillar, sample_tree


@pytest.fixture
def store(tmp_path):
    path = str(tmp_path / "admission.db")
    with CrimsonStore.open(path, readers=2) as store:
        store.trees.store_tree(sample_tree(), f=2)
        store.load_tree(caterpillar(80), name="cat", f=8)
        yield store


@pytest.fixture
def served(store):
    with CrimsonServer(store, port=0) as server:
        host, port = server.address
        yield store, host, port


def _free_estimate(cost: float = 0.0) -> CostEstimate:
    return CostEstimate(
        operation="lca",
        trees=("cat",),
        statements=int(cost),
        rows=0,
        result_bytes=0,
        warm_fraction=0.0,
        cost=cost,
    )


# ----------------------------------------------------------------------
# Estimator
# ----------------------------------------------------------------------


class TestEstimator:
    def test_batch_chunk_mirrors_engine(self):
        # The estimator's batching model must track the engine's actual
        # IN (...) chunk size, or statement counts drift from reality.
        assert BATCH_CHUNK == engine._IN_CHUNK

    def test_warm_handle_estimates_cheaper_than_cold(self, store):
        request = QueryRequest.lca("cat", "t1", "t80")
        cold = store.estimate(request)
        store.query(request)
        warm = store.estimate(request)
        assert warm.cost < cold.cost
        assert warm.warm_fraction > cold.warm_fraction

    def test_estimation_executes_no_sql(self, store):
        handle = store.open_tree("cat")
        before = {
            name: (stats.hits, stats.misses)
            for name, stats in handle.cache_stats().items()
        }
        estimate_query(QueryRequest.lca("cat", "t1", "t80"), handle)
        after = {
            name: (stats.hits, stats.misses)
            for name, stats in handle.cache_stats().items()
        }
        # Membership-only residency probes: no hits, no misses, no LRU
        # perturbation from estimating.
        assert after == before

    def test_match_estimate_never_warms(self, store):
        request = QueryRequest.match("cat", "(t1,t2);")
        cold = store.estimate(request)
        store.query(request)
        assert store.estimate(request).cost == cold.cost
        assert cold.warm_fraction == 0.0

    def test_analytics_estimate_warms_after_scan(self, store):
        request = AnalyticsRequest.compare("cat", "cat")
        cold = store.estimate(request)
        store.analyze(request)
        warm = store.estimate(request)
        assert warm.cost < cold.cost

    def test_round_trip_and_malformed(self):
        estimate = _free_estimate(3.0)
        assert CostEstimate.from_dict(estimate.as_dict()) == estimate
        with pytest.raises(ProtocolError, match="malformed cost estimate"):
            CostEstimate.from_dict({"operation": "lca"})
        with pytest.raises(ProtocolError, match="must be a list"):
            CostEstimate.from_dict(
                {**estimate.as_dict(), "trees": "not-a-list"}
            )


# ----------------------------------------------------------------------
# Controller
# ----------------------------------------------------------------------


class TestController:
    def test_unlimited_admits_everything(self):
        controller = AdmissionController()
        with controller.admit(_free_estimate(1e9)):
            pass
        assert controller.snapshot()["admitted"] == 1

    def test_cost_budget_refusal_carries_context(self):
        controller = AdmissionController(AdmissionLimits(max_cost=5.0))
        with pytest.raises(ResourceError) as excinfo:
            controller.admit(_free_estimate(6.0))
        error = excinfo.value
        assert error.resource == "cost"
        assert error.limit == 5.0
        assert error.estimate["cost"] == 6.0
        assert controller.snapshot()["refused"] == {"cost": 1}
        # Under budget still admits.
        controller.admit(_free_estimate(4.0)).release()

    def test_quota_bucket_drains_and_refills(self):
        clock = [0.0]
        controller = AdmissionController(
            AdmissionLimits(quota_rate=10.0, quota_burst=20.0),
            now=lambda: clock[0],
        )
        controller.admit(_free_estimate(15.0), key="abuser").release()
        with pytest.raises(ResourceError) as excinfo:
            controller.admit(_free_estimate(15.0), key="abuser")
        assert excinfo.value.resource == "quota"
        # Another session's bucket is untouched.
        controller.admit(_free_estimate(15.0), key="polite").release()
        # Refill at 10/s: one second buys the refused request back.
        clock[0] = 1.0
        controller.admit(_free_estimate(15.0), key="abuser").release()

    def test_concurrency_cap_refuses_and_releases(self):
        controller = AdmissionController(
            AdmissionLimits(max_concurrent=1, max_queue=0)
        )
        slot = controller.admit(_free_estimate())
        with pytest.raises(ResourceError) as excinfo:
            controller.admit(_free_estimate())
        assert excinfo.value.resource == "concurrency"
        slot.release()
        controller.admit(_free_estimate()).release()

    def test_refused_slot_refunds_quota(self):
        controller = AdmissionController(
            AdmissionLimits(
                quota_rate=10.0,
                quota_burst=20.0,
                max_concurrent=1,
                max_queue=0,
            ),
            now=lambda: 0.0,
        )
        slot = controller.admit(_free_estimate(1.0), key="victim")
        # Concurrency refuses this one; its 15 tokens must come back.
        with pytest.raises(ResourceError):
            controller.admit(_free_estimate(15.0), key="victim")
        slot.release()
        controller.admit(_free_estimate(15.0), key="victim").release()

    def test_bucket_count_is_bounded(self):
        controller = AdmissionController(
            AdmissionLimits(quota_rate=1e9), now=time.monotonic
        )
        for index in range(MAX_TRACKED_SESSIONS + 50):
            controller.admit(_free_estimate(0.0), key=index).release()
        assert controller.snapshot()["sessions"] <= MAX_TRACKED_SESSIONS


# ----------------------------------------------------------------------
# Store integration
# ----------------------------------------------------------------------


class TestStoreAdmission:
    def test_open_accepts_limits(self, tmp_path):
        path = str(tmp_path / "limited.db")
        with CrimsonStore.open(
            path, limits=AdmissionLimits(max_cost=0.001)
        ) as store:
            store.trees.store_tree(sample_tree(), f=2)
            with pytest.raises(ResourceError):
                store.query(QueryRequest.lca("fig1-sample", "Lla", "Spy"))

    def test_store_survives_refusals(self, store):
        store.admission = AdmissionController(
            AdmissionLimits(max_cost=0.001)
        )
        request = QueryRequest.lca("cat", "t1", "t80")
        with pytest.raises(ResourceError):
            store.query(request)
        # estimate is always free, and lifting the limit restores service.
        assert store.estimate(request).cost > 0.001
        store.admission = AdmissionController()
        assert store.query(request).node is not None

    def test_analytics_pass_through_admission(self, store):
        store.admission = AdmissionController(
            AdmissionLimits(max_cost=0.001)
        )
        with pytest.raises(ResourceError):
            store.analyze(AnalyticsRequest.compare("cat", "cat"))
        store.admission = AdmissionController()
        assert (
            store.analyze(AnalyticsRequest.compare("cat", "cat")).comparison
            is not None
        )

    def test_estimate_rejects_other_types(self, store):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            store.estimate("not a request")


# ----------------------------------------------------------------------
# Wire codec and the estimate verb
# ----------------------------------------------------------------------


class TestEstimateVerb:
    def test_estimate_request_codec_round_trip(self):
        query = QueryRequest.lca("cat", "t1", "t2")
        payload = wire.encode_estimate_request(query)
        assert wire.decode_estimate_request(payload) == query
        analytics = AnalyticsRequest.consensus("a", "b", threshold=0.6)
        payload = wire.encode_estimate_request(analytics)
        assert wire.decode_estimate_request(payload) == analytics

    def test_estimate_request_codec_rejects_unknown_kind(self):
        with pytest.raises(ProtocolError, match="kind"):
            wire.decode_estimate_request(
                wire.stamp({"kind": "mystery", "request": {}})
            )
        with pytest.raises(ProtocolError):
            wire.encode_estimate_request("not a request")

    def test_local_and_remote_estimates_agree(self, served):
        store, host, port = served
        requests = [
            QueryRequest.lca("cat", "t1", "t80"),
            QueryRequest.clade("cat", "t1", "t5", "t9"),
            AnalyticsRequest.compare("cat", "cat"),
        ]
        with RemoteSession(host, port) as session:
            for request in requests:
                # Same store, same cache state: the wire round trip
                # must not change a single figure.
                assert (
                    session.estimate(request).as_dict()
                    == store.estimate(request).as_dict()
                )

    def test_resource_error_round_trips_with_estimate(self, served):
        store, host, port = served
        store.admission = AdmissionController(
            AdmissionLimits(max_cost=0.001)
        )
        try:
            with RemoteSession(host, port) as session:
                with pytest.raises(ResourceError) as excinfo:
                    session.query(QueryRequest.lca("cat", "t1", "t80"))
                error = excinfo.value
                assert error.resource == "cost"
                assert error.limit == 0.001
                assert error.estimate is not None
                assert error.estimate["operation"] == "lca"
                # The refusal did not tear down the connection.
                assert session.ping()["protocol"] == wire.PROTOCOL_VERSION
        finally:
            store.admission = AdmissionController()


# ----------------------------------------------------------------------
# Chunked response framing
# ----------------------------------------------------------------------


class TestChunkedFraming:
    def round_trip(self, envelope, monkeypatch, chunk_bytes=64):
        monkeypatch.setattr(protocol, "STREAM_CHUNK_BYTES", chunk_bytes)
        buffer = io.BytesIO()
        protocol.write_envelope(buffer, envelope, chunked=True)
        buffer.seek(0)
        return buffer

    def test_small_envelope_stays_single_frame(self, monkeypatch):
        envelope = protocol.response_envelope(1, {"tiny": True})
        buffer = self.round_trip(envelope, monkeypatch, chunk_bytes=4096)
        assert len(buffer.getvalue().splitlines()) == 1
        assert protocol.read_envelope(buffer) == envelope

    def test_large_envelope_chunks_and_reassembles(self, monkeypatch):
        envelope = protocol.response_envelope(
            7, {"rows": ["ünïcode-" + str(i) for i in range(64)]}
        )
        buffer = self.round_trip(envelope, monkeypatch)
        frames = buffer.getvalue().splitlines()
        assert len(frames) > 1
        for frame in frames:
            parsed = json.loads(frame)
            assert parsed["id"] == 7
            assert "chunk" in parsed
        buffer.seek(0)
        assert protocol.read_envelope(buffer) == envelope

    def test_every_chunk_frame_respects_the_frame_limit(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 700)
        envelope = protocol.response_envelope(
            7, {"rows": ["x" * 50 for _ in range(64)]}
        )
        buffer = io.BytesIO()
        protocol.write_envelope(buffer, envelope, chunked=True)
        for frame in buffer.getvalue().splitlines():
            assert len(frame) < 700
        buffer.seek(0)
        assert protocol.read_envelope(buffer) == envelope

    def test_out_of_order_chunk_is_protocol_error(self):
        buffer = io.BytesIO()
        protocol.write_frame(
            buffer,
            wire.stamp({"id": 1, "chunk": 1, "more": False, "data": "{}"}),
        )
        buffer.seek(0)
        with pytest.raises(ProtocolError, match="out of order"):
            protocol.read_envelope(buffer)

    def test_eof_mid_chunk_is_protocol_error(self):
        buffer = io.BytesIO()
        protocol.write_frame(
            buffer,
            wire.stamp({"id": 1, "chunk": 0, "more": True, "data": "{"}),
        )
        buffer.seek(0)
        with pytest.raises(ProtocolError, match="mid-chunk"):
            protocol.read_envelope(buffer)

    def test_oversize_stream_is_refused(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_STREAM_BYTES", 8)
        buffer = io.BytesIO()
        protocol.write_frame(
            buffer,
            wire.stamp(
                {"id": 1, "chunk": 0, "more": True, "data": "0123456789"}
            ),
        )
        buffer.seek(0)
        with pytest.raises(ProtocolError, match="refusing to buffer"):
            protocol.read_envelope(buffer)


# ----------------------------------------------------------------------
# TreeInfo satellite
# ----------------------------------------------------------------------


class TestTreeInfoCounts:
    def test_count_aliases_match_fields(self, store):
        info = store.describe("cat")
        assert info.node_count == info.n_nodes
        assert info.leaf_count == info.n_leaves
        assert info.leaf_count == 80

    def test_counts_survive_the_wire(self, served):
        store, host, port = served
        with RemoteSession(host, port) as session:
            local = store.describe("cat")
            remote = session.describe("cat")
            assert remote.node_count == local.node_count
            assert remote.leaf_count == local.leaf_count
            assert remote.shard == local.shard


# ----------------------------------------------------------------------
# Graceful shutdown
# ----------------------------------------------------------------------


class TestGracefulShutdown:
    def test_draining_server_refuses_with_typed_error(self, store):
        server = CrimsonServer(store, port=0)
        server.start()
        drain_host, drain_port = server.address
        session = RemoteSession(drain_host, drain_port)
        try:
            session.ping()
            server.stop_accepting()
            with pytest.raises(ResourceError) as excinfo:
                session.ping()
            assert excinfo.value.resource == "shutdown"
        finally:
            session.close()
            server.shutdown(drain=1.0)
        assert server.inflight == 0

    def test_stop_before_loop_starts_does_not_hang(self, store):
        # The signal-handler race: a stop that lands before
        # serve_forever runs must still win, and shutdown must not
        # block on a TCP loop that never started.
        server = CrimsonServer(store, port=0)
        server.stop_accepting()
        server.serve_forever()  # draining: returns immediately
        server.shutdown(drain=0.5)

    @pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
    def test_serve_cli_exits_cleanly_on_signal(self, tmp_path, signum):
        db = str(tmp_path / "serve.db")
        with CrimsonStore.open(db) as store:
            store.trees.store_tree(sample_tree(), f=2)
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        env = dict(os.environ, PYTHONUNBUFFERED="1")
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [env.get("PYTHONPATH"), "src"])
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "from repro.cli.main import main; import sys; "
                f"sys.exit(main(['--db', {db!r}, 'serve', "
                f"'--port', '{port}', '--drain-timeout', '2']))",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            assert "serving" in banner, banner
            process.send_signal(signum)
            output, _ = process.communicate(timeout=20)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate(timeout=10)
        assert process.returncode == 0, banner + output
        assert "Traceback" not in banner + output


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestEstimateCli:
    def test_local_estimate_text_and_json(self, tmp_path, capsys):
        from repro.cli.main import main

        db = str(tmp_path / "cli.db")
        with CrimsonStore.open(db) as store:
            store.load_tree(caterpillar(40), name="cat", f=8)
        assert (
            main(["--db", db, "estimate", "lca", "cat",
                  "--taxa", "t1", "t40"])
            == 0
        )
        text = capsys.readouterr().out
        assert "lca over cat" in text and "cost" in text
        assert (
            main(["--db", db, "estimate", "consensus", "cat", "cat",
                  "--json"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["operation"] == "consensus"
        assert payload["cost"] > 0

    def test_query_estimate_needs_single_tree(self, tmp_path, capsys):
        from repro.cli.main import main

        db = str(tmp_path / "cli.db")
        with CrimsonStore.open(db) as store:
            store.load_tree(caterpillar(10), name="cat", f=8)
        assert (
            main(["--db", db, "estimate", "lca", "cat", "cat",
                  "--taxa", "t1", "t2"])
            == 1
        )
        assert "exactly one tree" in capsys.readouterr().err

    def test_serve_admission_flags_parse(self):
        from repro.cli.main import build_parser

        args = build_parser().parse_args(
            [
                "serve", "--max-cost", "25", "--quota", "400",
                "--quota-burst", "40", "--max-concurrent", "4",
                "--drain-timeout", "1.5",
            ]
        )
        limits = AdmissionLimits(
            max_cost=args.max_cost,
            quota_rate=args.quota,
            quota_burst=args.quota_burst,
            max_concurrent=args.max_concurrent,
        )
        assert not limits.unlimited
        assert limits.burst == 40.0
        assert args.drain_timeout == 1.5
