"""Every worked example in the paper, asserted end to end.

These tests pin the reproduction to the paper's own text: the Figure-1
Dewey labels, the Figure-4 layered index, the §2.1 LCA walkthroughs, the
§2.2 time-sampling example, and the Figure-2 projection.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchmark.sampling import sample_with_time, time_frontier
from repro.core.decompose import decompose
from repro.core.dewey import DeweyIndex, label_to_string
from repro.core.hindex import HierarchicalIndex
from repro.core.pattern import match_pattern
from repro.core.projection import project_tree
from repro.trees.build import sample_tree
from repro.trees.newick import parse_newick


class TestFigure1DeweyLabels:
    """§2.1: 'the label of the leaf node Lla … would be (2.1.1), and that
    of Spy would be (2.1.2)'."""

    def test_lla_label(self, fig1):
        index = DeweyIndex(fig1)
        assert label_to_string(index.label(fig1.find("Lla"))) == "2.1.1"

    def test_spy_label(self, fig1):
        index = DeweyIndex(fig1)
        assert label_to_string(index.label(fig1.find("Spy"))) == "2.1.2"

    def test_lca_is_label_2_1(self, fig1):
        """'the least common ancestor of Lla and Spy … yielding the
        (interior) node with label (2.1)'."""
        index = DeweyIndex(fig1)
        anchor = index.lca(fig1.find("Lla"), fig1.find("Spy"))
        assert label_to_string(index.label(anchor)) == "2.1"
        assert anchor is fig1.find("x")


class TestFigure4LayeredIndex:
    """The f=2 decomposition produces exactly the Figure-4 structure."""

    def test_two_layer_zero_blocks(self, fig1):
        decomposition = decompose(fig1, 2)
        assert len(decomposition.blocks) == 2

    def test_block_membership(self, fig1):
        decomposition = decompose(fig1, 2)
        top, split = decomposition.blocks
        top_names = {node.name for node, _ in top.members}
        split_names = {node.name for node, _ in split.members}
        assert top_names == {"R", "Syn", "A", "Bsu", "Bha", "x"}
        assert split_names == {"Lla", "Spy"}

    def test_split_block_rooted_at_x(self, fig1):
        decomposition = decompose(fig1, 2)
        split = decomposition.blocks[1]
        assert split.root.name == "x"

    def test_source_is_x_at_label_2_1(self, fig1):
        """'We call node 3 the source node of node 6' — the source of the
        split block is x's boundary position, label 2.1 in block 1."""
        decomposition = decompose(fig1, 2)
        split = decomposition.blocks[1]
        assert split.source_block == 0
        assert split.source_label == (2, 1)

    def test_two_layers_total(self, fig1):
        index = HierarchicalIndex(fig1, 2)
        assert index.n_layers == 2
        summary = index.layer_summary()
        assert summary[0]["blocks"] == 2
        assert summary[1]["blocks"] == 1

    def test_labels_bounded_by_f(self, fig1):
        index = HierarchicalIndex(fig1, 2)
        assert index.max_label_length() <= 2


class TestSection21LcaWalkthrough:
    """'Thus the LCA of Lla and Syn is the LCA of 3 and Syn, which is
    node 1' — the root, reached through the layer-1 tree."""

    def test_lca_lla_syn_is_root(self, fig1):
        index = HierarchicalIndex(fig1, 2)
        assert index.lca(fig1.find("Lla"), fig1.find("Syn")) is fig1.root

    def test_lca_lla_spy_is_x_within_split_block(self, fig1):
        index = HierarchicalIndex(fig1, 2)
        assert index.lca(fig1.find("Lla"), fig1.find("Spy")) is fig1.find("x")

    def test_layered_agrees_with_plain_dewey_on_all_pairs(self, fig1):
        layered = HierarchicalIndex(fig1, 2)
        plain = DeweyIndex(fig1)
        nodes = list(fig1.preorder())
        for a in nodes:
            for b in nodes:
                assert layered.lca(a, b) is plain.lca(a, b)


class TestSection22TimeSampling:
    """'there are four nodes which satisfy this condition … {Bha, x, Syn,
    BSU}', and sampling draws one leaf per frontier subtree."""

    def test_frontier_at_time_1(self, fig1):
        frontier = {node.name for node in time_frontier(fig1, 1.0)}
        assert frontier == {"Bha", "x", "Syn", "Bsu"}

    def test_sample_four_at_time_1(self, fig1):
        rng = np.random.default_rng(0)
        for _ in range(20):
            sample = set(sample_with_time(fig1, 1.0, 4, rng))
            assert sample in (
                {"Bha", "Lla", "Syn", "Bsu"},
                {"Bha", "Spy", "Syn", "Bsu"},
            )

    def test_both_outcomes_occur(self, fig1):
        rng = np.random.default_rng(1)
        outcomes = {
            frozenset(sample_with_time(fig1, 1.0, 4, rng)) for _ in range(60)
        }
        assert frozenset({"Bha", "Lla", "Syn", "Bsu"}) in outcomes
        assert frozenset({"Bha", "Spy", "Syn", "Bsu"}) in outcomes


class TestFigure2Projection:
    """Projecting {Bha, Lla, Syn} merges x into Lla's edge (0.5 + 1.0)."""

    def test_projection_structure(self, fig1):
        projection = project_tree(fig1, ["Bha", "Lla", "Syn"])
        assert set(projection.leaf_names()) == {"Bha", "Lla", "Syn"}
        root = projection.root
        assert {child.name for child in root.children} == {"Syn", "A"}

    def test_merged_edge_weight(self, fig1):
        projection = project_tree(fig1, ["Bha", "Lla", "Syn"])
        lla = projection.find("Lla")
        assert lla.length == pytest.approx(1.5)  # 0.5 + 1.0

    def test_figure2_edge_multiset(self, fig1):
        projection = project_tree(fig1, ["Bha", "Lla", "Syn"])
        lengths = sorted(
            node.length
            for node in projection.preorder()
            if node.parent is not None
        )
        assert lengths == pytest.approx([0.75, 1.5, 1.5, 2.5])

    def test_every_interior_branches(self, fig1):
        projection = project_tree(fig1, ["Bha", "Lla", "Syn"])
        for node in projection.preorder():
            if not node.is_leaf:
                assert len(node.children) >= 2


class TestPatternMatchExample:
    """§2.2: 'the tree pattern shown in Figure 2 will match the tree
    shown in Figure 1. However if we exchange the location of species
    Bha and Lla in the pattern tree, the new pattern will not match'."""

    def test_figure2_pattern_matches(self, fig1):
        pattern = parse_newick("(Syn:2.5,(Lla:1.5,Bha:1.5):0.75);")
        result = match_pattern(fig1, pattern, compare_lengths=True)
        assert result.matched
        assert result.similarity == 1.0

    def test_swapped_pattern_fails_ordered_match(self, fig1):
        pattern = parse_newick("(Syn:2.5,(Bha:1.5,Lla:1.5):0.75);")
        result = match_pattern(fig1, pattern, compare_lengths=True)
        assert not result.matched

    def test_swapped_pattern_matches_unordered(self, fig1):
        pattern = parse_newick("(Syn:2.5,(Bha:1.5,Lla:1.5):0.75);")
        result = match_pattern(fig1, pattern, ordered=False)
        assert result.matched
