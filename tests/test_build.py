"""Unit tests for tree construction helpers."""

from __future__ import annotations

import pytest

from repro.errors import TreeStructureError
from repro.trees.build import (
    balanced,
    caterpillar,
    from_parent_table,
    rename_leaves,
    sample_tree,
    star,
)


class TestSampleTree:
    def test_shape(self):
        tree = sample_tree()
        assert tree.size() == 8
        assert tree.n_leaves() == 5
        assert set(tree.leaf_names()) == {"Syn", "Lla", "Spy", "Bha", "Bsu"}

    def test_edge_lengths_match_paper(self):
        tree = sample_tree()
        assert tree.find("Syn").length == 2.5
        assert tree.find("A").length == 0.75
        assert tree.find("x").length == 0.5
        assert tree.find("Lla").length == 1.0
        assert tree.find("Bha").length == 1.5
        assert tree.find("Bsu").length == 1.25


class TestCaterpillar:
    def test_depth_is_linear(self):
        tree = caterpillar(10)
        assert tree.n_leaves() == 10
        assert tree.max_depth() == 9

    def test_leaf_names(self):
        tree = caterpillar(4)
        assert set(tree.leaf_names()) == {"t1", "t2", "t3", "t4"}

    def test_minimum_size(self):
        tree = caterpillar(2)
        assert tree.n_leaves() == 2

    def test_too_small_raises(self):
        with pytest.raises(TreeStructureError):
            caterpillar(1)

    def test_custom_edge_length(self):
        tree = caterpillar(5, edge_length=2.0)
        assert tree.find("t1").length == 2.0


class TestBalanced:
    def test_binary_counts(self):
        tree = balanced(3)
        assert tree.n_leaves() == 8
        assert tree.size() == 15
        assert tree.max_depth() == 3

    def test_ternary(self):
        tree = balanced(2, arity=3)
        assert tree.n_leaves() == 9

    def test_depth_zero(self):
        tree = balanced(0)
        assert tree.size() == 1
        assert tree.root.name == "t1"

    def test_invalid_args(self):
        with pytest.raises(TreeStructureError):
            balanced(-1)
        with pytest.raises(TreeStructureError):
            balanced(2, arity=1)

    def test_leaf_names_unique(self):
        tree = balanced(4)
        names = tree.leaf_names()
        assert len(names) == len(set(names))


class TestFromParentTable:
    def test_basic(self):
        tree = from_parent_table(
            {"r": None, "a": "r", "b": "r", "c": "a"},
            lengths={"a": 1.0, "b": 2.0, "c": 0.5},
        )
        assert tree.root.name == "r"
        assert tree.find("c").dist_from_root == pytest.approx(1.5)

    def test_child_order_follows_mapping_order(self):
        tree = from_parent_table({"r": None, "b": "r", "a": "r"})
        assert [child.name for child in tree.root.children] == ["b", "a"]

    def test_no_root_raises(self):
        with pytest.raises(TreeStructureError):
            from_parent_table({"a": "b", "b": "a"})

    def test_two_roots_raise(self):
        with pytest.raises(TreeStructureError):
            from_parent_table({"a": None, "b": None})

    def test_unknown_parent_raises(self):
        with pytest.raises(TreeStructureError):
            from_parent_table({"a": None, "b": "ghost"})


class TestStarAndRename:
    def test_star(self):
        tree = star(["a", "b", "c"])
        assert tree.max_depth() == 1
        assert len(tree.root.children) == 3

    def test_star_too_small(self):
        with pytest.raises(TreeStructureError):
            star(["a"])

    def test_rename_leaves(self, fig1):
        renamed = rename_leaves(fig1, {"Lla": "Lactococcus"})
        assert "Lactococcus" in renamed
        assert "Lla" in fig1  # original untouched
        assert "Lla" not in renamed
