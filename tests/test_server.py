"""The RPC subsystem: CrimsonServer, RemoteSession, and session parity.

The load-bearing property: a :class:`RemoteSession` against a live
server is indistinguishable from a :class:`LocalSession` over the same
store — identical results for all five operations and the catalogue
verbs, the *same typed errors*, and (extending the stored-query
differential suite) LCA answers that agree with the naive walk, plain
Dewey, layered in-memory, and stored-SQL engines on random trees.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.core.lca import LcaService
from repro.errors import (
    CrimsonError,
    ProtocolError,
    QueryError,
    StorageError,
)
from repro.server import CrimsonServer, RemoteSession
from repro.server import protocol
from repro.storage import wire
from repro.storage.api import CrimsonSession, LocalSession, QueryRequest
from repro.storage.store import CrimsonStore
from repro.trees.build import sample_tree
from repro.trees.newick import write_newick
from repro.trees.traversal import naive_lca


@pytest.fixture
def served(tmp_path):
    """A live server over a pooled file store holding the Figure-1 tree.

    Yields ``(store, host, port)``; the server runs on a background
    thread for the duration of the test.
    """
    path = str(tmp_path / "served.db")
    with CrimsonStore.open(path, readers=4) as store:
        store.trees.store_tree(sample_tree(), f=2)
        with CrimsonServer(store, port=0) as server:
            host, port = server.address
            yield store, host, port


@pytest.fixture
def remote(served):
    _, host, port = served
    with RemoteSession(host, port) as session:
        yield session


@pytest.fixture
def local(served):
    store, _, _ = served
    return store.session()


def result_signature(result):
    """A comparable, JSON-stable signature of a QueryResult's payload."""
    encoded = wire.encode_result(result)
    encoded["duration_ms"] = 0.0
    return json.dumps(encoded, sort_keys=True)


class TestSessionProtocol:
    def test_both_sessions_satisfy_the_protocol(self, local, remote):
        assert isinstance(local, CrimsonSession)
        assert isinstance(remote, CrimsonSession)

    def test_ping_reports_protocol_and_shape(self, local, remote):
        for session, transport in ((local, "local"), (remote, "tcp")):
            info = session.ping()
            assert info["protocol"] == wire.PROTOCOL_VERSION
            assert info["transport"] == transport
            assert info["shards"] == 1
            assert info["trees"] == 1

    def test_local_session_open_owns_its_store(self):
        with LocalSession.open() as session:
            session.store.trees.store_tree(sample_tree(), f=2)
            assert [info.name for info in session.list_trees()] == [
                "fig1-sample"
            ]
        assert session.store.is_closed

    def test_borrowed_local_session_leaves_store_open(self, served):
        store, _, _ = served
        store.session().close()
        assert not store.is_closed


class TestRemoteMatchesLocal:
    REQUESTS = [
        QueryRequest.lca("fig1-sample", "Lla", "Syn"),
        QueryRequest.lca_batch(
            "fig1-sample", [("Lla", "Spy"), ("Bha", "Syn"), ("Lla", "Lla")]
        ),
        QueryRequest.clade("fig1-sample", "Lla", "Spy", "Bha"),
        QueryRequest.project("fig1-sample", "Lla", "Syn", "Bha"),
        QueryRequest.match("fig1-sample", "(Lla,Spy);"),
        QueryRequest.match("fig1-sample", "((Lla,Spy),Bsu);", ordered=False),
    ]

    @pytest.mark.parametrize("request_", REQUESTS, ids=lambda r: r.operation)
    def test_identical_answers(self, local, remote, request_):
        assert result_signature(remote.query(request_)) == result_signature(
            local.query(request_)
        )

    def test_catalogue_verbs_agree(self, local, remote):
        assert remote.list_trees() == local.list_trees()
        assert remote.describe("fig1-sample") == local.describe("fig1-sample")
        local_reports = local.verify()
        remote_reports = remote.verify()
        assert [r.tree_name for r in remote_reports] == [
            r.tree_name for r in local_reports
        ]
        assert all(r.ok for r in remote_reports)
        assert [r.problems for r in remote.verify("fig1-sample")] == [
            r.problems for r in local.verify("fig1-sample")
        ]

    def test_recorded_remote_query_lands_in_history(self, served, remote):
        store, _, _ = served
        before = len(store.history.recent(limit=100))
        remote.query(
            QueryRequest.lca("fig1-sample", "Lla", "Spy"), record=True
        )
        entries = store.history.recent(limit=100)
        assert len(entries) == before + 1
        assert entries[0].operation == "lca"
        assert entries[0].params == {"taxa": ["Lla", "Spy"]}


class TestTypedErrorsCrossTheWire:
    def test_unknown_taxon_is_query_error(self, remote):
        with pytest.raises(QueryError, match="no node named"):
            remote.query(QueryRequest.lca("fig1-sample", "ghost", "Lla"))

    def test_unknown_tree_is_storage_error(self, remote):
        with pytest.raises(StorageError, match="no tree named"):
            remote.query(QueryRequest.lca("ghost", "a", "b"))
        with pytest.raises(StorageError, match="no tree named"):
            remote.describe("ghost")

    def test_connection_survives_an_error(self, remote):
        with pytest.raises(QueryError):
            remote.query(QueryRequest.lca("fig1-sample", "ghost", "Lla"))
        result = remote.query(QueryRequest.lca("fig1-sample", "Lla", "Spy"))
        assert result.node.name == "x"

    def test_unreachable_server_is_storage_error(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        with pytest.raises(StorageError, match="cannot reach"):
            RemoteSession("127.0.0.1", free_port, timeout=0.5)

    def test_closed_session_raises(self, served):
        _, host, port = served
        session = RemoteSession(host, port)
        session.close()
        session.close()  # idempotent
        with pytest.raises(StorageError, match="closed"):
            session.ping()


@pytest.fixture
def served_profile(tmp_path):
    """A live server over a store holding a same-leaf-set tree profile
    (plus the Figure-1 tree, whose leaf set is disjoint from it)."""
    import numpy as np

    from repro.reconstruction.random_tree import random_topology
    from repro.reconstruction.rearrange import perturb

    rng = np.random.default_rng(2006)
    names = [f"s{i:02d}" for i in range(14)]
    base = random_topology(names, rng)
    profile = [base] + [perturb(base, 2, rng) for _ in range(4)]
    path = str(tmp_path / "profile.db")
    with CrimsonStore.open(path, readers=4) as store:
        for index, tree in enumerate(profile):
            store.load_tree(tree, name=f"rep{index}", f=4)
        store.trees.store_tree(sample_tree(), f=2)
        with CrimsonServer(store, port=0) as server:
            host, port = server.address
            yield store, profile, host, port


class TestAnalyticsParity:
    """Local and remote sessions answer analytics identically."""

    NAMES = ["rep0", "rep1", "rep2", "rep3", "rep4"]

    def test_compare_identical(self, served_profile):
        store, _, host, port = served_profile
        local = store.session().compare("rep0", "rep1")
        with RemoteSession(host, port) as session:
            remote = session.compare("rep0", "rep1")
        assert remote.comparison == local.comparison
        assert remote.shared_clusters == local.shared_clusters
        assert remote.request == local.request

    def test_distance_matrix_identical(self, served_profile):
        store, _, host, port = served_profile
        local = store.session().distance_matrix(self.NAMES)
        with RemoteSession(host, port) as session:
            remote = session.distance_matrix(self.NAMES)
        assert remote.matrix == local.matrix

    def test_consensus_identical_and_matches_in_memory(self, served_profile):
        from repro.benchmark.consensus import majority_rule_consensus

        store, profile, host, port = served_profile
        local = store.session().consensus(self.NAMES)
        with RemoteSession(host, port) as session:
            remote = session.consensus(self.NAMES)
        memory_tree, memory_support = majority_rule_consensus(profile)
        assert (
            write_newick(remote.consensus)
            == write_newick(local.consensus)
            == write_newick(memory_tree)
        )
        assert dict(remote.support) == dict(local.support) == memory_support

    def test_strict_and_threshold_cross_the_wire(self, served_profile):
        store, _, host, port = served_profile
        with RemoteSession(host, port) as session:
            strict = session.consensus(self.NAMES, strict=True)
            assert strict.request.strict is True
            threshold = session.consensus(self.NAMES, threshold=0.75)
            assert threshold.request.threshold == 0.75

    def test_disjoint_leaf_sets_raise_query_error_remotely(
        self, served_profile
    ):
        _, _, host, port = served_profile
        with RemoteSession(host, port) as session:
            with pytest.raises(QueryError, match="different leaf sets"):
                session.compare("rep0", "fig1-sample")
            with pytest.raises(QueryError, match="different leaf sets"):
                session.consensus(["rep0", "fig1-sample"])
            # The connection survives the typed errors.
            assert session.ping()["trees"] == 6

    def test_unknown_tree_is_storage_error_remotely(self, served_profile):
        _, _, host, port = served_profile
        with RemoteSession(host, port) as session:
            with pytest.raises(StorageError, match="no tree named"):
                session.compare("rep0", "missing")

    def test_recorded_remote_analytics_land_in_history(self, served_profile):
        store, _, host, port = served_profile
        with RemoteSession(host, port) as session:
            session.consensus(self.NAMES, record=True)
        entry = store.history.recent(limit=1)[0]
        assert entry.operation == "consensus"
        assert entry.params["trees"] == self.NAMES


class TestRawProtocol:
    """Talk raw JSON lines to the server, bypassing RemoteSession."""

    def raw_call(self, host, port, line: bytes) -> dict:
        with socket.create_connection((host, port), timeout=5) as sock:
            stream = sock.makefile("rwb")
            stream.write(line + b"\n")
            stream.flush()
            return json.loads(stream.readline())

    def envelope(self, verb, payload=None, **overrides) -> bytes:
        envelope = protocol.request_envelope(verb, payload, request_id=9)
        envelope.update(overrides)
        return json.dumps(envelope).encode()

    def test_future_protocol_version_is_rejected(self, served):
        _, host, port = served
        response = self.raw_call(
            host,
            port,
            self.envelope("ping", protocol=wire.PROTOCOL_VERSION + 1),
        )
        assert response["ok"] is False
        error = wire.decode_error(response["error"])
        assert isinstance(error, ProtocolError)
        assert "speaks protocol" in str(error)

    def test_unknown_verb_is_protocol_error(self, served):
        _, host, port = served
        response = self.raw_call(host, port, self.envelope("drop_tables"))
        assert response["ok"] is False
        assert isinstance(
            wire.decode_error(response["error"]), ProtocolError
        )

    def test_unparseable_frame_gets_an_error_then_eof(self, served):
        _, host, port = served
        with socket.create_connection((host, port), timeout=5) as sock:
            stream = sock.makefile("rwb")
            stream.write(b"this is not json\n")
            stream.flush()
            response = json.loads(stream.readline())
            assert response["ok"] is False
            # The server hangs up after a framing error.
            assert stream.readline() == b""

    def test_non_object_verify_payload_is_protocol_error(self, served):
        _, host, port = served
        response = self.raw_call(host, port, self.envelope("verify", "gold"))
        assert response["ok"] is False
        assert isinstance(
            wire.decode_error(response["error"]), ProtocolError
        )

    def test_request_id_is_echoed(self, served):
        _, host, port = served
        response = self.raw_call(
            host, port, self.envelope("ping", request_id=None, id=12345)
        )
        assert response["id"] == 12345

    def test_unrecognized_op_is_typed_error_and_connection_survives(
        self, served
    ):
        """The pre/post-analytics compatibility guarantee, probed raw.

        A verb this build does not dispatch — exactly what ``analyze``
        is to a pre-analytics server, or what a future verb is to this
        one — must come back as a typed ProtocolError *reply* (the
        stream stays frame-aligned), and the same connection must keep
        answering afterwards.
        """
        _, host, port = served
        with socket.create_connection((host, port), timeout=5) as sock:
            stream = sock.makefile("rwb")
            for frame in (
                self.envelope("analyze_v2", {"trees": ["a", "b"]}),
                self.envelope("frobnicate"),
            ):
                stream.write(frame + b"\n")
                stream.flush()
                response = json.loads(stream.readline())
                assert response["ok"] is False
                error = wire.decode_error(response["error"])
                assert isinstance(error, ProtocolError)
                assert "unknown verb" in str(error)
            # Same connection, next request: still serving.
            stream.write(self.envelope("ping") + b"\n")
            stream.flush()
            response = json.loads(stream.readline())
            assert response["ok"] is True

    def test_malformed_analyze_payload_is_protocol_error(self, served):
        _, host, port = served
        with socket.create_connection((host, port), timeout=5) as sock:
            stream = sock.makefile("rwb")
            # Well-framed but unstamped/shapeless analytics payload.
            stream.write(
                self.envelope("analyze", {"trees": ["a", "b"]}) + b"\n"
            )
            stream.flush()
            response = json.loads(stream.readline())
            assert response["ok"] is False
            assert isinstance(
                wire.decode_error(response["error"]), ProtocolError
            )
            # The connection survives the malformed payload.
            stream.write(self.envelope("ping") + b"\n")
            stream.flush()
            assert json.loads(stream.readline())["ok"] is True

    def test_unknown_analytics_operation_is_query_error(self, served):
        _, host, port = served
        payload = wire.stamp({"operation": "blend", "trees": ["a", "b"]})
        response = self.raw_call(
            host, port, self.envelope("analyze", payload)
        )
        assert response["ok"] is False
        error = wire.decode_error(response["error"])
        assert isinstance(error, QueryError)
        assert "unknown analytics operation" in str(error)


class TestConnectionHygiene:
    """Framing failures and hung servers must not strand a session."""

    def test_oversize_result_streams_in_chunks_to_a_modern_client(
        self, served, monkeypatch
    ):
        _, host, port = served
        # Shrink the frame limit: the clade result no longer fits one
        # frame.  RemoteSession advertises chunked responses, so the
        # server streams it as bounded chunk frames instead of refusing.
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 700)
        with RemoteSession(host, port) as session:
            result = session.query(
                QueryRequest.clade("fig1-sample", "Lla", "Bsu")
            )
            assert len(list(result.nodes)) > 0
            # The stream stays frame-aligned afterwards.
            lca = session.query(
                QueryRequest.lca("fig1-sample", "Lla", "Spy")
            )
            assert lca.node.name == "x"

    def test_oversize_result_is_typed_error_for_legacy_clients(
        self, served, monkeypatch
    ):
        _, host, port = served
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 700)
        # A client that does NOT advertise chunks (an older build) still
        # gets the one-frame refusal, and the connection survives it.
        with socket.create_connection((host, port), timeout=5) as sock:
            stream = sock.makefile("rwb")
            request = QueryRequest.clade("fig1-sample", "Lla", "Bsu")
            protocol.write_frame(
                stream,
                protocol.request_envelope(
                    "query", wire.encode_request(request), request_id=1
                ),
            )
            response = protocol.read_frame(stream)
            assert response["ok"] is False
            error = wire.decode_error(response["error"])
            assert isinstance(error, ProtocolError)
            assert "byte limit" in str(error)
            # Nothing of the oversize frame hit the wire, so the same
            # connection keeps working.
            protocol.write_frame(
                stream, protocol.request_envelope("ping", request_id=2)
            )
            assert protocol.read_frame(stream)["ok"] is True

    def test_misaligned_stream_poisons_the_session(self, monkeypatch):
        # A fake server that answers any frame with unframeable garbage
        # longer than the (shrunken) frame limit.
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 256)
        with socket.socket() as listener:
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            host, port = listener.getsockname()

            def fake_server():
                conn, _ = listener.accept()
                with conn:
                    conn.recv(4096)
                    conn.sendall(b"x" * 1024 + b"\n")

            thread = threading.Thread(target=fake_server, daemon=True)
            thread.start()
            session = RemoteSession(host, port, timeout=5)
            with pytest.raises(ProtocolError, match="not a Crimson peer"):
                session.ping()
            # The stream can't be re-aligned, so the session closed
            # itself; later calls fail fast instead of mispairing.
            with pytest.raises(StorageError, match="closed"):
                session.ping()
            thread.join(timeout=5)

    def test_timeout_mid_round_trip_poisons_the_session(self):
        # A late response after a timeout could mispair with the next
        # request, so a timed-out session must refuse further calls.
        with socket.socket() as listener:
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            host, port = listener.getsockname()
            session = RemoteSession(host, port, timeout=0.3)
            with pytest.raises(StorageError, match="lost"):
                session.ping()
            with pytest.raises(StorageError, match="closed"):
                session.ping()

    def test_close_unblocks_a_call_hung_on_a_silent_server(self):
        with socket.socket() as listener:
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            host, port = listener.getsockname()
            session = RemoteSession(host, port)
            failures: list[Exception] = []

            def hung_call():
                try:
                    session.ping()
                except Exception as error:  # noqa: BLE001 - asserted below
                    failures.append(error)

            thread = threading.Thread(target=hung_call)
            thread.start()
            time.sleep(0.2)  # let the call block on the silent server
            session.close()
            thread.join(timeout=5)
            assert not thread.is_alive()
            assert len(failures) == 1
            assert isinstance(failures[0], StorageError)


class TestDifferentialPropertyRemote:
    """Extend naive == dewey == layered == stored to RemoteSession."""

    @pytest.mark.parametrize("f", [1, 3])
    @pytest.mark.parametrize("seed", [3, 11])
    def test_all_strategies_agree_through_the_wire(
        self, tmp_path, f, seed, random_tree_factory
    ):
        tree = random_tree_factory(60, seed=seed)
        rank = {
            id(node): index for index, node in enumerate(tree.preorder())
        }
        path = str(tmp_path / f"diff-{f}-{seed}.db")
        with CrimsonStore.open(path, readers=2) as store:
            handle = store.trees.store_tree(tree, name="diff", f=f)
            naive = LcaService(tree, "naive")
            dewey = LcaService(tree, "dewey")
            layered = LcaService(tree, "layered", f=f)
            nodes = list(tree.preorder())
            pairs = [
                (nodes[i % len(nodes)], nodes[(i * 7 + 3) % len(nodes)])
                for i in range(20)
            ]
            with CrimsonServer(store, port=0) as server:
                host, port = server.address
                with RemoteSession(host, port) as remote:
                    batch = remote.query(
                        QueryRequest.lca_batch(
                            "diff",
                            [(rank[id(a)], rank[id(b)]) for a, b in pairs],
                        )
                    )
                    for (a, b), remote_row in zip(pairs, batch.nodes):
                        expected = naive_lca(a, b)
                        assert naive.lca(a, b) is expected
                        assert dewey.lca(a, b) is expected
                        assert layered.lca(a, b) is expected
                        stored_row = handle.lca(rank[id(a)], rank[id(b)])
                        assert stored_row.node_id == rank[id(expected)]
                        assert remote_row == stored_row
                        single = remote.query(
                            QueryRequest.lca(
                                "diff", rank[id(a)], rank[id(b)]
                            )
                        )
                        assert single.node == stored_row

    def test_remote_projection_equals_stored(
        self, tmp_path, random_tree_factory
    ):
        tree = random_tree_factory(60, seed=7)
        path = str(tmp_path / "proj.db")
        with CrimsonStore.open(path, readers=2) as store:
            store.trees.store_tree(tree, name="proj", f=3)
            names = [leaf.name for leaf in tree.root.leaves()][::2]
            local = store.query(QueryRequest.project("proj", *names))
            with CrimsonServer(store, port=0) as server:
                host, port = server.address
                with RemoteSession(host, port) as remote:
                    over_wire = remote.query(
                        QueryRequest.project("proj", *names)
                    )
            assert write_newick(over_wire.projection) == write_newick(
                local.projection
            )


class TestConcurrentClients:
    def test_many_sessions_agree_with_ground_truth(self, served):
        store, host, port = served
        truth = store.query(
            QueryRequest.lca_batch(
                "fig1-sample", [("Lla", "Spy"), ("Bha", "Syn")]
            )
        )
        expected = [row.node_id for row in truth.nodes]
        errors: list[str] = []
        mismatches = [0]
        lock = threading.Lock()

        def client():
            try:
                with RemoteSession(host, port) as session:
                    for _ in range(25):
                        result = session.query(
                            QueryRequest.lca_batch(
                                "fig1-sample",
                                [("Lla", "Spy"), ("Bha", "Syn")],
                            )
                        )
                        got = [row.node_id for row in result.nodes]
                        if got != expected:
                            with lock:
                                mismatches[0] += 1
            except Exception as error:  # noqa: BLE001 - recorded
                with lock:
                    errors.append(repr(error))

        threads = [threading.Thread(target=client) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert mismatches[0] == 0

    def test_shared_session_is_thread_safe(self, served):
        _, host, port = served
        errors: list[str] = []
        lock = threading.Lock()
        with RemoteSession(host, port) as session:

            def worker():
                try:
                    for _ in range(20):
                        result = session.query(
                            QueryRequest.lca("fig1-sample", "Lla", "Spy")
                        )
                        assert result.node.name == "x"
                except Exception as error:  # noqa: BLE001 - recorded
                    with lock:
                        errors.append(repr(error))

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert errors == []


class TestServerAgainstShardedStore:
    def test_remote_queries_are_layout_agnostic(self, tmp_path):
        path = str(tmp_path / "sharded.db")
        with CrimsonStore.open(path, readers=2, shards=3) as store:
            for index in range(6):
                store.load_tree(sample_tree(), name=f"copy{index}", f=2)
            assert {info.shard for info in store.list_trees()} == {0, 1, 2}
            with CrimsonServer(store, port=0) as server:
                host, port = server.address
                with RemoteSession(host, port) as remote:
                    signatures = {
                        result_signature(
                            remote.query(
                                QueryRequest.lca(f"copy{i}", "Lla", "Syn")
                            )
                        ).replace(f"copy{i}", "copy")
                        for i in range(6)
                    }
                    assert len(signatures) == 1
                    assert remote.ping()["shards"] == 3


class TestCliServe:
    def test_serve_starts_and_prints_address(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli.main import main
        from repro.server.server import CrimsonServer as ServerClass

        monkeypatch.setattr(ServerClass, "serve_forever", lambda self: None)
        db = str(tmp_path / "serve.db")
        assert (
            main(
                ["--db", db, "--readers", "2", "serve", "--port", "29106"]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "serving" in output
        assert "29106" in output
        assert "2 pooled readers" in output
