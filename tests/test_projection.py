"""Unit tests for tree projection."""

from __future__ import annotations

import random

import pytest

from repro.core.lca import LcaService
from repro.core.projection import brute_force_projection, project_tree
from repro.errors import QueryError
from repro.trees.build import balanced, caterpillar


class TestBasicProjections:
    def test_all_leaves_is_near_identity(self, fig1):
        projection = project_tree(fig1, fig1.leaf_names())
        # Same leaves, same topology (no out-degree-1 nodes existed).
        assert set(projection.leaf_names()) == set(fig1.leaf_names())
        assert projection.topology_key() == fig1.topology_key()

    def test_two_leaves(self, fig1):
        projection = project_tree(fig1, ["Lla", "Spy"])
        assert projection.root.name == "x"
        assert sorted(projection.leaf_names()) == ["Lla", "Spy"]
        assert projection.find("Lla").length == pytest.approx(1.0)

    def test_single_leaf(self, fig1):
        projection = project_tree(fig1, ["Bha"])
        assert projection.size() == 1
        assert projection.root.name == "Bha"
        assert projection.root.length == 0.0

    def test_single_leaf_keep_root_edge(self, fig1):
        projection = project_tree(fig1, ["Bha"], keep_root_edge=True)
        assert projection.root.length == pytest.approx(2.25)

    def test_duplicates_collapsed(self, fig1):
        projection = project_tree(fig1, ["Lla", "Lla", "Spy"])
        assert sorted(projection.leaf_names()) == ["Lla", "Spy"]

    def test_root_is_sample_lca(self, fig1):
        projection = project_tree(fig1, ["Lla", "Bha"])
        assert projection.root.name == "A"

    def test_keep_root_edge_on_nested_sample(self, fig1):
        projection = project_tree(fig1, ["Lla", "Spy"], keep_root_edge=True)
        # Path above x: 0.75 + 0.5.
        assert projection.root.length == pytest.approx(1.25)

    def test_order_independent(self, fig1):
        first = project_tree(fig1, ["Syn", "Lla", "Bha"])
        second = project_tree(fig1, ["Bha", "Syn", "Lla"])
        assert first.to_newick() == second.to_newick()


class TestErrors:
    def test_empty_sample(self, fig1):
        with pytest.raises(QueryError):
            project_tree(fig1, [])

    def test_unknown_leaf(self, fig1):
        with pytest.raises(QueryError):
            project_tree(fig1, ["Lla", "ghost"])

    def test_interior_name_rejected(self, fig1):
        with pytest.raises(QueryError):
            project_tree(fig1, ["Lla", "x"])

    def test_brute_force_empty(self, fig1):
        with pytest.raises(QueryError):
            brute_force_projection(fig1, [])

    def test_brute_force_unknown(self, fig1):
        with pytest.raises(QueryError):
            brute_force_projection(fig1, ["ghost"])


class TestAgainstBruteForce:
    def test_balanced_samples(self):
        tree = balanced(4)
        names = tree.leaf_names()
        rng = random.Random(5)
        for _ in range(25):
            k = rng.randint(2, len(names))
            sample = rng.sample(names, k)
            fast = project_tree(tree, sample)
            slow = brute_force_projection(tree, sample)
            assert fast.equals(slow, tolerance=1e-9)

    def test_caterpillar_samples(self):
        tree = caterpillar(30)
        names = tree.leaf_names()
        rng = random.Random(6)
        for _ in range(25):
            sample = rng.sample(names, rng.randint(2, 10))
            fast = project_tree(tree, sample)
            slow = brute_force_projection(tree, sample)
            assert fast.equals(slow, tolerance=1e-9)

    def test_random_trees(self, random_tree_factory):
        rng = random.Random(7)
        for seed in range(10):
            tree = random_tree_factory(80, seed)
            leaves = [leaf.name for leaf in tree.root.leaves()]
            sample = rng.sample(leaves, rng.randint(1, len(leaves)))
            fast = project_tree(tree, sample)
            slow = brute_force_projection(tree, sample)
            assert fast.equals(slow, tolerance=1e-9)


class TestWithExplicitService:
    @pytest.mark.parametrize("strategy", ["naive", "dewey", "layered"])
    def test_any_lca_strategy_works(self, fig1, strategy):
        service = LcaService(fig1, strategy)
        projection = project_tree(
            fig1, ["Bha", "Lla", "Syn"], lca_service=service
        )
        lengths = sorted(
            n.length for n in projection.preorder() if n.parent is not None
        )
        assert lengths == pytest.approx([0.75, 1.5, 1.5, 2.5])

    def test_reused_service_multiple_projections(self, fig1):
        service = LcaService(fig1, "layered", f=2)
        first = project_tree(fig1, ["Lla", "Syn"], lca_service=service)
        second = project_tree(fig1, ["Spy", "Bsu"], lca_service=service)
        assert first.root.name == "R"
        assert second.root.name == "R"


class TestProjectionInvariants:
    def test_interiors_always_branch(self, random_tree_factory):
        rng = random.Random(8)
        for seed in range(6):
            tree = random_tree_factory(60, seed)
            leaves = [leaf.name for leaf in tree.root.leaves()]
            sample = rng.sample(leaves, min(len(leaves), 7))
            projection = project_tree(tree, sample)
            for node in projection.preorder():
                assert node.is_leaf or len(node.children) >= 2

    def test_leaf_distances_preserved(self, fig1):
        """Projection preserves root-path lengths below the new root."""
        projection = project_tree(fig1, ["Bha", "Lla", "Syn"])
        original = fig1.distances_from_root()
        projected = projection.distances_from_root()
        offset = original[id(fig1.find(projection.root.name))]
        for leaf in projection.root.leaves():
            original_leaf = fig1.find(leaf.name)
            assert projected[id(leaf)] == pytest.approx(
                original[id(original_leaf)] - offset
            )
