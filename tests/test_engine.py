"""Stored-query engine: LRU row caches, batch APIs, statement accounting.

Covers the cache primitive, the warm-path guarantee (a repeated stored
LCA executes **zero** SQL statements), the batched LCA/projection paths,
and a differential property check pinning all five LCA implementations
(naive walk, plain Dewey, layered in-memory, stored-SQL single, stored
batch) to the same answers on random trees across several ``f`` values.
"""

from __future__ import annotations

import pytest

from repro.core.lca import LcaService
from repro.errors import QueryError, StorageError
from repro.storage.cache import CacheStats, LRUCache
from repro.storage.projection import project_stored
from repro.storage.tree_repository import TreeRepository
from repro.trees.build import balanced, caterpillar, sample_tree
from repro.trees.traversal import naive_lca


@pytest.fixture
def repo(db):
    return TreeRepository(db)


@pytest.fixture
def stored(repo, fig1):
    return repo.store_tree(fig1, name="fig1", f=2)


class TestLRUCache:
    def test_roundtrip_and_counters(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1
        assert cache.misses == 1

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": "b" becomes the LRU entry
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_put_refresh_does_not_evict(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not a new entry
        assert len(cache) == 2
        assert cache.evictions == 0
        assert cache.get("a") == 10

    def test_invalid_size_rejected(self):
        with pytest.raises(StorageError):
            LRUCache(0)

    def test_clear_keeps_counters_reset_zeroes_them(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1
        cache.reset_stats()
        assert cache.stats.hits == 0

    def test_stats_aggregate(self):
        total = CacheStats(hits=1, misses=1) + CacheStats(hits=2, misses=0)
        assert total.hits == 3
        assert total.lookups == 4
        assert total.hit_rate == pytest.approx(0.75)
        assert CacheStats().hit_rate == 0.0


class TestSegmentedAdmission:
    """The pinned segment: ordinary inserts can never evict pinned rows."""

    def test_pinned_entries_survive_a_probationary_flood(self):
        cache = LRUCache(4)
        cache.put("index", "skeleton", pinned=True)
        for key in range(100):
            cache.put(key, key)
        assert cache.get("index") == "skeleton"
        assert len(cache) == 5  # 4 probationary + 1 pinned
        assert cache.pinned_count == 1

    def test_pinned_segment_is_bounded_and_lru(self):
        cache = LRUCache(2)
        cache.put("a", 1, pinned=True)
        cache.put("b", 2, pinned=True)
        cache.get("a")  # refresh: "b" becomes the pinned LRU entry
        cache.put("c", 3, pinned=True)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_pinning_is_sticky(self):
        cache = LRUCache(2)
        cache.put("k", 1)
        cache.put("k", 2, pinned=True)  # promotion
        assert cache.pinned_count == 1
        assert len(cache) == 1
        # An unpinned re-put refreshes in place — never demotes.
        cache.put("k", 3)
        assert cache.pinned_count == 1
        assert cache.get("k") == 3

    def test_repeated_scans_cannot_demote_pinned_rows(self):
        cache = LRUCache(4)
        cache.put("skeleton", "row", pinned=True)
        for _round in range(3):
            # A scan that re-fetches the skeleton key unpinned ...
            cache.put("skeleton", "row")
            for key in range(100):
                cache.put(key, key)
        # ... still cannot push it out.
        assert cache.get("skeleton") == "row"
        assert cache.pinned_count == 1

    def test_stats_report_pinned_entries(self):
        cache = LRUCache(4)
        cache.put("a", 1, pinned=True)
        cache.put("b", 2)
        stats = cache.stats
        assert stats.pinned == 1
        assert stats.size == 2
        assert stats.as_dict()["pinned"] == 1

    def test_clear_drops_both_segments(self):
        cache = LRUCache(4)
        cache.put("a", 1, pinned=True)
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0
        assert cache.pinned_count == 0

    def test_full_tree_scan_cannot_evict_index_rows(self, db):
        """The ROADMAP cache-admission item, end to end: after a warm-up,
        an adversarial layer-0 scan (every node row, every canonical
        inode — the analytics extraction pattern) must leave the pinned
        index skeleton resident, so the repeated point-query workload
        re-fetches only the handful of evicted layer-0 rows instead of
        re-walking the index from cold.
        """
        repo = TreeRepository(db, cache_size=256)
        repo.store_tree(caterpillar(600), name="deep", f=4)
        handle = repo.open("deep")

        def workload():
            handle.lca("t1", "t600")
            handle.lca("t3", "t300")

        with db.count_statements() as counter:
            workload()
        cold = counter.count
        with db.count_statements() as counter:
            workload()
        assert counter.count == 0  # fully warm before the scan

        # The adversarial scan: more layer-0 rows than the cache holds.
        # Run it twice — the second round re-fetches rows the first
        # evicted, which must not demote pinned skeleton rows (pinning
        # is sticky).
        assert handle.info.n_nodes > 256
        for _round in range(2):
            handle.preorder_rows()
            handle.engine.canonical_inodes_many(range(handle.info.n_nodes))

        before = {
            name: stats.misses
            for name, stats in handle.cache_stats().items()
        }
        with db.count_statements() as counter:
            workload()
        after = handle.cache_stats()
        # The index skeleton (blocks, pinned inodes) never misses ...
        assert after["blocks"].misses == before["blocks"]
        assert after["inodes"].misses == before["inodes"]
        # ... so the post-scan repeat costs a few layer-0 re-fetches,
        # not a cold re-walk.
        assert 0 < counter.count <= 20
        assert counter.count < cold // 10


class TestWarmPath:
    def test_warm_repeat_lca_executes_zero_sql(self, db, stored):
        assert stored.lca("Lla", "Spy").name == "x"
        with db.count_statements() as counter:
            assert stored.lca("Lla", "Spy").name == "x"
        assert counter.count == 0

    def test_warm_lca_many_executes_zero_sql(self, db, stored):
        stored.lca_many(["Lla", "Spy", "Bha"])
        with db.count_statements() as counter:
            assert stored.lca_many(["Lla", "Spy", "Bha"]).name == "A"
        assert counter.count == 0

    def test_cold_query_counts_statements(self, db, stored):
        with db.count_statements() as counter:
            stored.lca("Lla", "Syn")
        assert counter.count > 0

    def test_cache_stats_track_hits(self, stored):
        stored.lca("Lla", "Spy")
        first = stored.cache_stats()["total"]
        stored.lca("Lla", "Spy")
        second = stored.cache_stats()["total"]
        assert second.hits > first.hits
        assert second.misses == first.misses

    def test_clear_cache_restores_cold_path(self, db, stored):
        stored.lca("Lla", "Spy")
        stored.clear_cache()
        with db.count_statements() as counter:
            stored.lca("Lla", "Spy")
        assert counter.count > 0

    def test_reset_cache_stats(self, stored):
        stored.lca("Lla", "Spy")
        stored.reset_cache_stats()
        total = stored.cache_stats()["total"]
        assert total.hits == 0 and total.misses == 0

    def test_tiny_cache_still_correct_and_evicts(self, db, fig1):
        handle = TreeRepository(db, cache_size=2).store_tree(
            fig1, name="tiny", f=2
        )
        for _ in range(3):
            assert handle.lca("Lla", "Syn").name == "R"
            assert handle.lca("Lla", "Spy").name == "x"
        assert handle.cache_stats()["total"].evictions > 0

    def test_statement_counter_stops(self, db, stored):
        with db.count_statements() as counter:
            pass
        stored.clear_cache()
        stored.lca("Lla", "Syn")
        assert counter.count == 0  # frozen at scope exit


class TestBatchApis:
    def test_nodes_by_name_preserves_input_order(self, stored):
        rows = stored.nodes_by_name(["Spy", "Lla", "Bha"])
        assert [row.name for row in rows] == ["Spy", "Lla", "Bha"]

    def test_nodes_by_name_unknown_raises(self, stored):
        with pytest.raises(QueryError, match="alien"):
            stored.nodes_by_name(["Lla", "alien"])

    def test_lca_batch_matches_single_calls(self, db, repo):
        tree = balanced(4)
        handle = repo.store_tree(tree, name="bal", f=2)
        leaves = handle.leaves()
        pairs = [
            (leaves[i].node_id, leaves[-(i + 1)].node_id)
            for i in range(len(leaves) // 2)
        ]
        batch = handle.lca_batch(pairs)
        singles = [handle.lca(a, b) for a, b in pairs]
        assert [row.node_id for row in batch] == [
            row.node_id for row in singles
        ]

    def test_lca_batch_empty_is_empty(self, stored):
        assert stored.lca_batch([]) == []

    def test_lca_batch_unknown_name_raises(self, stored):
        with pytest.raises(QueryError):
            stored.lca_batch([("Lla", "alien")])

    def test_lca_batch_mixed_ids_and_names(self, stored):
        lla = stored.node_by_name("Lla")
        (row,) = stored.lca_batch([(lla.node_id, "Syn")])
        assert row.name == "R"

    def test_lca_batch_fewer_statements_than_singles(self, db, repo):
        tree = caterpillar(120)
        repo.store_tree(tree, name="deep", f=4)
        pairs = [(f"t{i + 1}", f"t{120 - i}") for i in range(40)]

        single_handle = repo.open("deep")
        with db.count_statements() as single_counter:
            for a, b in pairs:
                single_handle.lca(a, b)

        batch_handle = repo.open("deep")
        with db.count_statements() as batch_counter:
            batch_handle.lca_batch(pairs)

        assert batch_counter.count < single_counter.count

    def test_lca_many_early_exit_matches_in_memory_semantics(self, stored):
        # Once the fold reaches the root, remaining items are never
        # inspected — same contract as DeweyIndex/HierarchicalIndex.
        assert stored.lca_many(["Lla", "Syn", "alien"]).name == "R"
        with pytest.raises(QueryError):
            stored.lca_many(["Lla", "alien"])

    def test_lca_many_threads_rows_without_refetch(self, db, stored):
        # The fold must not re-fetch the running result's row: after a
        # first warming pass the entire fold is cache-served.
        stored.lca_many(["Lla", "Spy", "Bsu", "Bha"])
        with db.count_statements() as counter:
            stored.lca_many(["Lla", "Spy", "Bsu", "Bha"])
        assert counter.count == 0


def _preorder_rank(tree):
    return {id(node): rank for rank, node in enumerate(tree.preorder())}


class TestDifferentialProperty:
    @pytest.mark.parametrize("f", [1, 2, 3, 8])
    @pytest.mark.parametrize("seed", [3, 11])
    def test_all_strategies_agree_on_random_trees(
        self, db, f, seed, random_tree_factory
    ):
        tree = random_tree_factory(70, seed=seed)
        rank = _preorder_rank(tree)
        handle = TreeRepository(db).store_tree(tree, name=f"r{f}-{seed}", f=f)
        naive = LcaService(tree, "naive")
        dewey = LcaService(tree, "dewey")
        layered = LcaService(tree, "layered", f=f)

        nodes = list(tree.preorder())
        pairs = [
            (nodes[i % len(nodes)], nodes[(i * 7 + 3) % len(nodes)])
            for i in range(25)
        ]
        batch = handle.lca_batch(
            [(rank[id(a)], rank[id(b)]) for a, b in pairs]
        )
        for (a, b), batch_row in zip(pairs, batch):
            expected = naive_lca(a, b)
            assert naive.lca(a, b) is expected
            assert dewey.lca(a, b) is expected
            assert layered.lca(a, b) is expected
            stored_row = handle.lca(rank[id(a)], rank[id(b)])
            assert stored_row.node_id == rank[id(expected)]
            assert batch_row.node_id == rank[id(expected)]

    def test_figure1_tree_all_strategies(self, db):
        tree = sample_tree()
        rank = _preorder_rank(tree)
        handle = TreeRepository(db).store_tree(tree, name="fig1", f=2)
        dewey = LcaService(tree, "dewey")
        layered = LcaService(tree, "layered", f=2)
        leaves = list(tree.root.leaves())
        for a in leaves:
            for b in leaves:
                expected = naive_lca(a, b)
                assert dewey.lca(a, b) is expected
                assert layered.lca(a, b) is expected
                assert handle.lca(rank[id(a)], rank[id(b)]).node_id == rank[
                    id(expected)
                ]


class TestBatchedProjection:
    def test_projection_unchanged_by_batching(self, db, random_tree_factory):
        from repro.benchmark.metrics import robinson_foulds
        from repro.core.projection import project_tree

        tree = random_tree_factory(80, seed=5)
        handle = TreeRepository(db).store_tree(tree, name="proj", f=3)
        names = [leaf.name for leaf in tree.root.leaves()][::2]
        via_sql = project_stored(handle, names)
        in_memory = project_tree(tree, names)
        assert sorted(via_sql.leaf_names()) == sorted(in_memory.leaf_names())
        assert robinson_foulds(via_sql, in_memory) == 0

    def test_warm_projection_executes_zero_sql(self, db, stored):
        names = ["Lla", "Spy", "Bha", "Syn"]
        project_stored(stored, names)
        with db.count_statements() as counter:
            project_stored(stored, names)
        assert counter.count == 0
