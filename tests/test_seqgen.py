"""Unit tests for sequence evolution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.reconstruction.distances import p_distance
from repro.simulation.models import jc69, k80
from repro.simulation.rates import SiteRates
from repro.simulation.seqgen import evolve_sequences
from repro.trees.build import caterpillar, sample_tree
from repro.trees.newick import parse_newick


class TestBasics:
    def test_all_leaves_covered(self, fig1, rng):
        sequences = evolve_sequences(fig1, jc69(), 100, rng=rng)
        assert set(sequences) == set(fig1.leaf_names())

    def test_lengths_match(self, fig1, rng):
        sequences = evolve_sequences(fig1, jc69(), 123, rng=rng)
        assert all(len(seq) == 123 for seq in sequences.values())

    def test_alphabet_is_dna(self, fig1, rng):
        sequences = evolve_sequences(fig1, jc69(), 200, rng=rng)
        assert set("".join(sequences.values())) <= set("ACGT")

    def test_include_interior(self, fig1, rng):
        sequences = evolve_sequences(
            fig1, jc69(), 50, rng=rng, include_interior=True
        )
        assert "x" in sequences and "A" in sequences and "R" in sequences

    def test_reproducible(self, fig1):
        first = evolve_sequences(fig1, jc69(), 60, rng=np.random.default_rng(9))
        second = evolve_sequences(fig1, jc69(), 60, rng=np.random.default_rng(9))
        assert first == second

    def test_invalid_args(self, fig1, rng):
        with pytest.raises(SimulationError):
            evolve_sequences(fig1, jc69(), 0, rng=rng)
        with pytest.raises(SimulationError):
            evolve_sequences(fig1, jc69(), 10, rng=rng, scale=0.0)

    def test_unnamed_leaf_rejected(self, rng):
        tree = parse_newick("((a:1,:1):1,b:1);")
        with pytest.raises(SimulationError):
            evolve_sequences(tree, jc69(), 10, rng=rng)

    def test_zero_length_edges_copy_parent(self, rng):
        tree = parse_newick("(a:0,b:0);")
        sequences = evolve_sequences(tree, jc69(), 300, rng=rng)
        assert sequences["a"] == sequences["b"]


class TestDivergenceStatistics:
    def test_divergence_tracks_branch_length(self, rng):
        """Observed p-distance on a two-leaf tree approximates the JC
        expectation 3/4 (1 - e^{-4d/3})."""
        for branch in (0.05, 0.2, 0.6):
            tree = parse_newick(f"(a:{branch},b:{branch});")
            sequences = evolve_sequences(tree, jc69(), 30000, rng=rng)
            observed = p_distance(sequences["a"], sequences["b"])
            expected = 0.75 * (1.0 - np.exp(-4.0 * (2 * branch) / 3.0))
            assert observed == pytest.approx(expected, abs=0.02)

    def test_scale_multiplies_divergence(self, rng):
        tree = parse_newick("(a:0.1,b:0.1);")
        close = evolve_sequences(tree, jc69(), 20000, rng=rng, scale=0.1)
        far = evolve_sequences(tree, jc69(), 20000, rng=rng, scale=3.0)
        assert p_distance(close["a"], close["b"]) < p_distance(
            far["a"], far["b"]
        )

    def test_siblings_more_similar_than_distant_taxa(self, rng):
        tree = sample_tree()
        sequences = evolve_sequences(tree, k80(2.0), 20000, rng=rng, scale=0.2)
        sibling_distance = p_distance(sequences["Lla"], sequences["Spy"])
        distant_distance = p_distance(sequences["Lla"], sequences["Bsu"])
        assert sibling_distance < distant_distance


class TestRateHeterogeneity:
    def test_invariant_sites_never_change(self, rng):
        tree = parse_newick("(a:5,b:5);")  # saturating branch
        site_rates = SiteRates(2000, rng, proportion_invariant=0.5)
        sequences = evolve_sequences(
            tree, jc69(), 2000, rng=rng, site_rates=site_rates
        )
        invariant = site_rates.rates == 0.0
        a = np.array(list(sequences["a"]))
        b = np.array(list(sequences["b"]))
        assert np.all(a[invariant] == b[invariant])

    def test_gamma_slow_sites_differ_less(self, rng):
        tree = parse_newick("(a:1.0,b:1.0);")
        site_rates = SiteRates(20000, rng, alpha=0.3)
        sequences = evolve_sequences(
            tree, jc69(), 20000, rng=rng, site_rates=site_rates
        )
        a = np.array(list(sequences["a"]))
        b = np.array(list(sequences["b"]))
        slow = site_rates.rates <= np.median(site_rates.rates)
        slow_rate = (a[slow] != b[slow]).mean()
        fast_rate = (a[~slow] != b[~slow]).mean()
        assert slow_rate < fast_rate

    def test_rates_length_mismatch_raises(self, fig1, rng):
        site_rates = SiteRates(50, rng)
        with pytest.raises(SimulationError):
            evolve_sequences(fig1, jc69(), 60, rng=rng, site_rates=site_rates)


class TestDeepTree:
    def test_deep_chain_evolves_iteratively(self, rng):
        tree = caterpillar(3000, edge_length=0.001)
        sequences = evolve_sequences(tree, jc69(), 30, rng=rng)
        assert len(sequences) == 3000
