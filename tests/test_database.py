"""Unit tests for connection management and schema creation."""

from __future__ import annotations

import sqlite3
import threading

import pytest

from repro.errors import StorageError
from repro.storage.database import CrimsonDatabase
from repro.storage.schema import SCHEMA_VERSION


class TestLifecycle:
    def test_in_memory_default(self):
        db = CrimsonDatabase()
        assert db.path == ":memory:"
        assert not db.is_closed
        db.close()

    def test_close_is_idempotent(self):
        db = CrimsonDatabase()
        db.close()
        db.close()
        assert db.is_closed

    def test_use_after_close_raises(self):
        db = CrimsonDatabase()
        db.close()
        with pytest.raises(StorageError):
            db.execute("SELECT 1")

    def test_context_manager_closes(self):
        with CrimsonDatabase() as db:
            db.execute("SELECT 1")
        assert db.is_closed

    def test_file_database(self, tmp_path):
        path = tmp_path / "crimson.db"
        with CrimsonDatabase(path) as db:
            assert db.query_one("SELECT 1 AS one")["one"] == 1
        assert path.exists()

    def test_file_database_persists(self, tmp_path):
        path = tmp_path / "crimson.db"
        with CrimsonDatabase(path) as db:
            db.execute(
                "INSERT INTO query_history (issued_at, operation, params_json) "
                "VALUES ('now', 'test', '{}')"
            )
            db.connection.commit()
        with CrimsonDatabase(path) as db:
            row = db.query_one("SELECT COUNT(*) AS n FROM query_history")
            assert row["n"] == 1

    def test_repr_states(self):
        db = CrimsonDatabase()
        assert "open" in repr(db)
        db.close()
        assert "closed" in repr(db)


class TestSchema:
    EXPECTED_TABLES = {
        "meta",
        "trees",
        "nodes",
        "blocks",
        "inodes",
        "species",
        "query_history",
    }

    def test_all_tables_created(self, db):
        rows = db.query_all(
            "SELECT name FROM sqlite_master WHERE type = 'table'"
        )
        names = {row["name"] for row in rows}
        assert self.EXPECTED_TABLES <= names

    def test_schema_version_recorded(self, db):
        row = db.query_one("SELECT value FROM meta WHERE key = 'schema_version'")
        assert row["value"] == str(SCHEMA_VERSION)

    def test_schema_creation_idempotent(self, db):
        from repro.storage.schema import create_schema

        create_schema(db.connection)  # second run must not fail

    def test_tree_name_unique(self, db):
        db.execute(
            "INSERT INTO trees (name, n_nodes, n_leaves, max_depth, f, "
            "n_layers, n_blocks, created_at) VALUES "
            "('t', 1, 1, 0, 8, 1, 1, 'now')"
        )
        # Constraint violations surface as StorageError (CrimsonError),
        # with the sqlite error preserved as the cause.
        with pytest.raises(StorageError) as excinfo:
            db.execute(
                "INSERT INTO trees (name, n_nodes, n_leaves, max_depth, f, "
                "n_layers, n_blocks, created_at) VALUES "
                "('t', 1, 1, 0, 8, 1, 1, 'now')"
            )
        assert isinstance(excinfo.value.__cause__, sqlite3.IntegrityError)

    def test_expected_indexes_exist(self, db):
        rows = db.query_all(
            "SELECT name FROM sqlite_master WHERE type = 'index'"
        )
        names = {row["name"] for row in rows}
        assert "idx_nodes_name" in names
        assert "idx_inodes_label" in names
        assert "idx_nodes_dist" in names


class TestTransactions:
    def test_commit_on_success(self, db):
        with db.transaction() as connection:
            connection.execute(
                "INSERT INTO query_history (issued_at, operation, params_json) "
                "VALUES ('now', 'op', '{}')"
            )
        row = db.query_one("SELECT COUNT(*) AS n FROM query_history")
        assert row["n"] == 1

    def test_rollback_on_error(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction() as connection:
                connection.execute(
                    "INSERT INTO query_history (issued_at, operation, params_json) "
                    "VALUES ('now', 'op', '{}')"
                )
                raise RuntimeError("boom")
        row = db.query_one("SELECT COUNT(*) AS n FROM query_history")
        assert row["n"] == 0

    def test_cross_thread_reads_wait_for_open_transactions(self, tmp_path):
        """Regression: a read from another thread on a shared connection
        must block until the open transaction commits, never observe
        its uncommitted middle (connections are check_same_thread=False
        so pool-less stores can be driven from worker threads)."""
        db = CrimsonDatabase(tmp_path / "iso.db")
        in_transaction = threading.Event()
        release = threading.Event()
        result: dict[str, object] = {}

        def writer():
            with db.transaction() as connection:
                connection.execute(
                    "INSERT INTO meta(key, value) VALUES ('probe', 'set')"
                )
                in_transaction.set()
                release.wait(timeout=5)

        def reader():
            row = db.query_one("SELECT value FROM meta WHERE key = 'probe'")
            result["value"] = row["value"] if row is not None else None
            result["after_release"] = release.is_set()

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        assert in_transaction.wait(timeout=5)
        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        release.set()
        writer_thread.join()
        reader_thread.join()
        db.close()
        # The read completed only after the commit (so it saw the
        # committed row, not the transaction's uncommitted middle).
        assert result == {"value": "set", "after_release": True}
