"""Unit tests for tree pattern matching."""

from __future__ import annotations

import pytest

from repro.core.pattern import match_pattern
from repro.errors import QueryError
from repro.trees.newick import parse_newick


class TestExactMatch:
    def test_structure_only_match(self, fig1):
        pattern = parse_newick("(Syn,(Lla,Bha));")
        result = match_pattern(fig1, pattern)
        assert result.matched

    def test_lengths_checked_when_requested(self, fig1):
        wrong = parse_newick("(Syn:9.9,(Lla:1.5,Bha:1.5):0.75);")
        assert not match_pattern(fig1, wrong, compare_lengths=True).matched
        assert match_pattern(fig1, wrong, compare_lengths=False).matched

    def test_full_tree_as_pattern(self, fig1):
        result = match_pattern(fig1, fig1.copy(), compare_lengths=True)
        assert result.matched

    def test_two_leaf_pattern(self, fig1):
        pattern = parse_newick("(Lla:1,Spy:1);")
        result = match_pattern(fig1, pattern, compare_lengths=True)
        assert result.matched
        assert result.projection.root.name == "x"

    def test_wrong_topology_fails(self, fig1):
        pattern = parse_newick("((Syn,Lla),Bha);")
        result = match_pattern(fig1, pattern)
        assert not result.matched
        assert result.similarity < 1.0

    def test_unordered_match(self, fig1):
        pattern = parse_newick("((Bha,Lla),Syn);")
        assert not match_pattern(fig1, pattern).matched
        assert match_pattern(fig1, pattern, ordered=False).matched


class TestApproximateSimilarity:
    def test_similarity_in_unit_interval(self, fig1):
        pattern = parse_newick("((Syn,Lla),Bha);")
        result = match_pattern(fig1, pattern)
        assert 0.0 <= result.similarity <= 1.0

    def test_match_has_similarity_one(self, fig1):
        pattern = parse_newick("(Syn,(Lla,Bha));")
        assert match_pattern(fig1, pattern).similarity == 1.0

    def test_partial_overlap_scores_between(self):
        target = parse_newick("(((a,b),(c,d)),(e,f));")
        pattern = parse_newick("(((a,b),(c,e)),(d,f));")
        result = match_pattern(target, pattern)
        assert not result.matched
        assert 0.0 < result.similarity < 1.0


class TestErrors:
    def test_missing_taxa_raise(self, fig1):
        pattern = parse_newick("(Lla,ghost);")
        with pytest.raises(QueryError):
            match_pattern(fig1, pattern)

    def test_projection_is_returned(self, fig1):
        pattern = parse_newick("(Syn,(Lla,Bha));")
        result = match_pattern(fig1, pattern)
        assert set(result.projection.leaf_names()) == {"Syn", "Lla", "Bha"}
