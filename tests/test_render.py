"""Unit tests for terminal rendering and the Walrus export."""

from __future__ import annotations

import json

from repro.cli.render import render_ascii, render_phylogram
from repro.cli.walrus import to_walrus_json
from repro.trees.build import caterpillar
from repro.trees.newick import parse_newick


class TestAsciiRender:
    def test_all_names_present(self, fig1):
        output = render_ascii(fig1)
        for name in ("R", "Syn", "A", "x", "Lla", "Spy", "Bha", "Bsu"):
            assert name in output

    def test_lengths_shown(self, fig1):
        assert ":2.5" in render_ascii(fig1)

    def test_lengths_hidden(self, fig1):
        assert ":" not in render_ascii(fig1, show_lengths=False)

    def test_box_drawing_structure(self, fig1):
        output = render_ascii(fig1)
        assert "├──" in output
        assert "└──" in output

    def test_line_count_matches_nodes(self, fig1):
        assert len(render_ascii(fig1).splitlines()) == fig1.size()

    def test_truncation(self):
        tree = caterpillar(500)
        output = render_ascii(tree, max_nodes=50)
        assert "truncated" in output
        assert len(output.splitlines()) == 51

    def test_anonymous_nodes_rendered_as_star(self):
        tree = parse_newick("((a:1,b:1):1,c:1);")
        assert "*" in render_ascii(tree)


class TestPhylogram:
    def test_rows_per_leaf(self, fig1):
        assert len(render_phylogram(fig1).splitlines()) == fig1.n_leaves()

    def test_distances_annotated(self, fig1):
        output = render_phylogram(fig1)
        assert "2.5" in output
        assert "2.25" in output

    def test_bar_lengths_ordered(self, fig1):
        output = render_phylogram(fig1)
        rows = {line.split()[0]: line.count("-") for line in output.splitlines()}
        assert rows["Syn"] > rows["Bsu"]


class TestWalrusExport:
    def test_valid_json(self, fig1):
        document = json.loads(to_walrus_json(fig1))
        assert document["format"] == "walrus-json"
        assert document["n_nodes"] == fig1.size()
        assert document["n_links"] == fig1.size() - 1

    def test_links_form_tree(self, fig1):
        document = json.loads(to_walrus_json(fig1))
        destinations = [link["destination"] for link in document["links"]]
        assert len(destinations) == len(set(destinations))
        assert 0 not in destinations  # root has no incoming link

    def test_lengths_preserved(self, fig1):
        document = json.loads(to_walrus_json(fig1))
        lengths = sorted(link["length"] for link in document["links"])
        assert lengths == sorted(
            node.length for node in fig1.preorder() if node.parent is not None
        )

    def test_leaf_flags(self, fig1):
        document = json.loads(to_walrus_json(fig1))
        leaves = [node for node in document["nodes"] if node["leaf"]]
        assert len(leaves) == fig1.n_leaves()
