"""Tests for the quartet distance metric and the TN93 model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchmark.metrics import quartet_distance, robinson_foulds
from repro.errors import QueryError, SimulationError
from repro.reconstruction.random_tree import random_topology
from repro.simulation.birth_death import yule_tree
from repro.simulation.models import hky85, tn93


class TestQuartetDistance:
    def test_identity(self, rng):
        tree = yule_tree(8, rng=rng)
        assert quartet_distance(tree, tree.copy()) == 0.0

    def test_known_four_taxon_value(self):
        from repro.trees.newick import parse_newick

        a = parse_newick("((a,b),(c,d));")
        b = parse_newick("((a,c),(b,d));")
        assert quartet_distance(a, b) == 1.0

    def test_star_vs_resolved(self):
        from repro.trees.newick import parse_newick

        resolved = parse_newick("((a,b),(c,d));")
        star = parse_newick("(a,b,c,d);")
        assert quartet_distance(resolved, star) == 1.0  # star is unresolved

    def test_range(self, rng):
        truth = yule_tree(12, rng=rng)
        noise = random_topology(truth.leaf_names(), rng)
        assert 0.0 <= quartet_distance(truth, noise) <= 1.0

    def test_root_invariance(self):
        """Quartets ignore rooting (unlike triplets)."""
        from repro.trees.newick import parse_newick

        a = parse_newick("((a,b),(c,d));")
        b = parse_newick("(((c,d),a),b);")
        assert quartet_distance(a, b) == 0.0

    def test_sampling_close_to_exact(self):
        rng = np.random.default_rng(5)
        first = yule_tree(10, rng=rng)
        second = random_topology(first.leaf_names(), rng)
        exact = quartet_distance(first, second, max_quartets=10**9)
        sampled = quartet_distance(first, second, max_quartets=300, rng=rng)
        assert sampled == pytest.approx(exact, abs=0.2)

    def test_correlates_with_rf(self, rng):
        """Trees with zero RF distance must have zero quartet distance."""
        truth = yule_tree(9, rng=rng)
        from repro.reconstruction.distances import tree_distance_matrix
        from repro.reconstruction.nj import neighbor_joining

        estimate = neighbor_joining(tree_distance_matrix(truth))
        assert robinson_foulds(truth, estimate) == 0
        assert quartet_distance(truth, estimate) == 0.0

    def test_too_few_leaves(self):
        from repro.trees.newick import parse_newick

        tree = parse_newick("((a,b),c);")
        with pytest.raises(QueryError):
            quartet_distance(tree, tree.copy())

    def test_mismatched_leafsets(self):
        from repro.trees.newick import parse_newick

        with pytest.raises(QueryError):
            quartet_distance(
                parse_newick("((a,b),(c,d));"), parse_newick("((a,b),(c,e));")
            )


class TestTn93:
    def test_valid_model(self):
        model = tn93()
        matrix = model.transition_matrix(0.5)
        assert np.allclose(matrix.sum(axis=1), 1.0)
        assert np.allclose(model.frequencies @ matrix, model.frequencies)

    def test_purine_pyrimidine_asymmetry(self):
        model = tn93(kappa_purine=1.0, kappa_pyrimidine=10.0)
        matrix = model.transition_matrix(0.2)
        # C->T (pyrimidine transition) must dominate A->G.
        assert matrix[1, 3] > matrix[0, 2]

    def test_reduces_to_hky(self):
        same = tn93(kappa_purine=2.0, kappa_pyrimidine=2.0)
        hky = hky85(kappa=2.0)
        assert np.allclose(
            same.transition_matrix(0.7), hky.transition_matrix(0.7), atol=1e-12
        )

    def test_invalid_rates(self):
        with pytest.raises(SimulationError):
            tn93(kappa_purine=0.0)
        with pytest.raises(SimulationError):
            tn93(kappa_pyrimidine=-1.0)

    def test_usable_in_seqgen(self, rng):
        from repro.simulation.seqgen import evolve_sequences

        tree = yule_tree(6, rng=rng)
        sequences = evolve_sequences(tree, tn93(), 100, rng=rng, scale=0.2)
        assert len(sequences) == 6
