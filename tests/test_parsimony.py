"""Unit tests for Fitch parsimony scoring and greedy search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchmark.metrics import robinson_foulds
from repro.errors import ReconstructionError
from repro.reconstruction.parsimony import fitch_score, parsimony_greedy
from repro.simulation.birth_death import yule_tree
from repro.simulation.models import jc69
from repro.simulation.seqgen import evolve_sequences
from repro.trees.newick import parse_newick


class TestFitchScore:
    def test_identical_sequences_score_zero(self):
        tree = parse_newick("((a,b),(c,d));")
        sequences = {name: "ACGT" for name in "abcd"}
        assert fitch_score(tree, sequences) == 0

    def test_textbook_single_site(self):
        # Fitch's canonical example: ((A,C),(C,C)) needs one change.
        tree = parse_newick("((a,b),(c,d));")
        sequences = {"a": "A", "b": "C", "c": "C", "d": "C"}
        assert fitch_score(tree, sequences) == 1

    def test_worst_case_all_different(self):
        tree = parse_newick("((a,b),(c,d));")
        sequences = {"a": "A", "b": "C", "c": "G", "d": "T"}
        assert fitch_score(tree, sequences) == 3

    def test_sites_add_up(self):
        tree = parse_newick("((a,b),(c,d));")
        sequences = {"a": "AA", "b": "CA", "c": "CC", "d": "CC"}
        assert fitch_score(tree, sequences) == 1 + 1

    def test_topology_affects_score(self):
        grouped = parse_newick("((a,b),(c,d));")
        split = parse_newick("((a,c),(b,d));")
        sequences = {"a": "A", "b": "A", "c": "C", "d": "C"}
        assert fitch_score(grouped, sequences) == 1
        assert fitch_score(split, sequences) == 2

    def test_multifurcation_supported(self):
        tree = parse_newick("(a,b,c);")
        sequences = {"a": "A", "b": "A", "c": "C"}
        assert fitch_score(tree, sequences) == 1

    def test_non_dna_characters_work(self):
        tree = parse_newick("((a,b),c);")
        sequences = {"a": "01", "b": "01", "c": "10"}
        assert fitch_score(tree, sequences) == 2

    def test_missing_sequence_raises(self):
        tree = parse_newick("(a,b);")
        with pytest.raises(ReconstructionError):
            fitch_score(tree, {"a": "ACGT"})

    def test_misaligned_raises(self):
        tree = parse_newick("(a,b);")
        with pytest.raises(ReconstructionError):
            fitch_score(tree, {"a": "ACGT", "b": "AC"})


class TestGreedySearch:
    def test_builds_tree_over_all_taxa(self, rng):
        truth = yule_tree(8, rng=rng)
        sequences = evolve_sequences(truth, jc69(), 300, rng=rng, scale=0.2)
        estimate = parsimony_greedy(sequences)
        assert set(estimate.leaf_names()) == set(sequences)

    def test_score_beats_random_insertion_order_average(self, rng):
        truth = yule_tree(10, rng=rng)
        sequences = evolve_sequences(truth, jc69(), 400, rng=rng, scale=0.2)
        greedy_score = fitch_score(parsimony_greedy(sequences), sequences)
        from repro.reconstruction.random_tree import random_topology

        random_scores = [
            fitch_score(random_topology(list(sequences), rng), sequences)
            for _ in range(5)
        ]
        assert greedy_score <= min(random_scores)

    def test_recovers_clean_signal(self):
        rng = np.random.default_rng(4)
        truth = yule_tree(7, rng=rng)
        sequences = evolve_sequences(truth, jc69(), 3000, rng=rng, scale=0.3)
        estimate = parsimony_greedy(sequences, nni_rounds=2)
        assert robinson_foulds(truth, estimate) <= 2

    def test_too_few_taxa_raises(self):
        with pytest.raises(ReconstructionError):
            parsimony_greedy({"a": "ACGT", "b": "ACGT"})

    def test_missing_sequence_raises(self):
        with pytest.raises(ReconstructionError):
            parsimony_greedy(
                {"a": "A", "b": "A", "c": "A"}, order=["a", "b", "c", "ghost"]
            )

    def test_custom_insertion_order(self, rng):
        truth = yule_tree(6, rng=rng)
        sequences = evolve_sequences(truth, jc69(), 200, rng=rng, scale=0.2)
        order = sorted(sequences)
        estimate = parsimony_greedy(sequences, order=order)
        assert set(estimate.leaf_names()) == set(order)

    def test_nni_never_worsens(self, rng):
        truth = yule_tree(9, rng=rng)
        sequences = evolve_sequences(truth, jc69(), 300, rng=rng, scale=0.25)
        no_nni = parsimony_greedy(sequences, nni_rounds=0)
        with_nni = parsimony_greedy(sequences, nni_rounds=3)
        assert fitch_score(with_nni, sequences) <= fitch_score(no_nni, sequences)
