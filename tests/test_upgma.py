"""Unit tests for UPGMA/WPGMA clustering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchmark.metrics import robinson_foulds
from repro.errors import ReconstructionError
from repro.reconstruction.distances import DistanceMatrix, tree_distance_matrix
from repro.reconstruction.upgma import upgma, wpgma
from repro.simulation.birth_death import coalescent_tree, yule_tree
from repro.trees.newick import parse_newick
from repro.trees.tree import validate_tree


class TestSmallCases:
    def test_two_taxa(self):
        matrix = DistanceMatrix(["a", "b"], np.array([[0.0, 4.0], [4.0, 0.0]]))
        tree = upgma(matrix)
        assert tree.find("a").length == pytest.approx(2.0)
        assert tree.find("b").length == pytest.approx(2.0)

    def test_textbook_example(self):
        """Durbin et al. style example: closest pair merges first."""
        names = ["a", "b", "c", "d"]
        values = np.array(
            [
                [0.0, 2.0, 6.0, 6.0],
                [2.0, 0.0, 6.0, 6.0],
                [6.0, 6.0, 0.0, 4.0],
                [6.0, 6.0, 4.0, 0.0],
            ]
        )
        tree = upgma(DistanceMatrix(names, values))
        # (a,b) and (c,d) are cherries, heights 1 and 2, root at 3.
        assert robinson_foulds(
            tree, parse_newick("((a:1,b:1):2,(c:2,d:2):1);")
        ) == 0
        assert tree.find("a").length == pytest.approx(1.0)
        assert tree.find("c").length == pytest.approx(2.0)

    def test_single_taxon_raises(self):
        with pytest.raises(ReconstructionError):
            upgma(DistanceMatrix(["a"], np.zeros((1, 1))))

    def test_structure_valid(self, rng):
        matrix = tree_distance_matrix(coalescent_tree(8, rng=rng))
        validate_tree(upgma(matrix), require_leaf_names=False)


class TestUltrametricRecovery:
    @pytest.mark.parametrize("n_leaves", [4, 8, 15, 24])
    def test_recovers_clock_trees(self, n_leaves):
        rng = np.random.default_rng(n_leaves)
        truth = coalescent_tree(n_leaves, rng=rng)
        estimate = upgma(tree_distance_matrix(truth))
        assert robinson_foulds(truth, estimate) == 0

    def test_result_is_ultrametric(self, rng):
        estimate = upgma(tree_distance_matrix(yule_tree(12, rng=rng)))
        distances = estimate.distances_from_root()
        leaf_distances = [
            distances[id(leaf)] for leaf in estimate.root.leaves()
        ]
        assert max(leaf_distances) - min(leaf_distances) < 1e-9

    def test_fails_without_clock(self):
        """The classical UPGMA failure: the long-branch taxon b is pulled
        away from its true sister a (rooted clusters disagree).  This is
        the behaviour that makes NJ beat UPGMA in E7."""
        from repro.benchmark.metrics import clusters
        from repro.reconstruction.nj import neighbor_joining

        truth = parse_newick("((a:0.1,b:3.0):0.1,(c:0.1,d:0.1):0.1);")
        matrix = tree_distance_matrix(truth)
        estimate = upgma(matrix)
        assert clusters(estimate) != clusters(truth)
        # ... while NJ, clock-free, still recovers the unrooted topology.
        assert robinson_foulds(truth, neighbor_joining(matrix)) == 0


class TestWpgma:
    def test_agrees_with_upgma_on_balanced_sizes(self):
        names = ["a", "b", "c", "d"]
        values = np.array(
            [
                [0.0, 2.0, 8.0, 8.0],
                [2.0, 0.0, 8.0, 8.0],
                [8.0, 8.0, 0.0, 2.0],
                [8.0, 8.0, 2.0, 0.0],
            ]
        )
        matrix = DistanceMatrix(names, values)
        assert robinson_foulds(upgma(matrix), wpgma(matrix)) == 0

    def test_recovers_clock_trees(self, rng):
        truth = coalescent_tree(10, rng=rng)
        estimate = wpgma(tree_distance_matrix(truth))
        assert robinson_foulds(truth, estimate) == 0
