"""Unit tests for tree comparison metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchmark.metrics import (
    bipartitions,
    branch_score_distance,
    clusters,
    compare_splits,
    normalized_rf,
    robinson_foulds,
    same_topology,
    triplet_distance,
)
from repro.errors import QueryError
from repro.reconstruction.random_tree import random_topology
from repro.simulation.birth_death import yule_tree
from repro.trees.newick import parse_newick


class TestClustersAndSplits:
    def test_clusters_fig1(self, fig1):
        result = clusters(fig1)
        assert frozenset({"Lla", "Spy"}) in result
        assert frozenset({"Lla", "Spy", "Bha"}) in result
        assert len(result) == 2  # A and x only (root is trivial)

    def test_clusters_with_trivial(self, fig1):
        result = clusters(fig1, include_trivial=True)
        assert frozenset({"Syn"}) in result
        assert frozenset(fig1.leaf_names()) in result

    def test_bipartitions_normalized(self):
        tree = parse_newick("((a,b),(c,d),e);")
        splits = bipartitions(tree)
        # Sides not containing 'a' (the smallest name).
        assert splits == {frozenset({"c", "d"})} | {
            frozenset({"c", "d", "e"})
        }

    def test_duplicate_leaves_raise(self):
        tree = parse_newick("((a,a),b);")
        with pytest.raises(QueryError):
            bipartitions(tree)

    def test_star_has_no_splits(self):
        tree = parse_newick("(a,b,c,d);")
        assert bipartitions(tree) == set()


class TestRobinsonFoulds:
    def test_identity(self, fig1):
        assert robinson_foulds(fig1, fig1.copy()) == 0

    def test_symmetry(self):
        a = parse_newick("((a,b),(c,d),e);")
        b = parse_newick("((a,c),(b,d),e);")
        assert robinson_foulds(a, b) == robinson_foulds(b, a)

    def test_known_distance(self):
        a = parse_newick("((a,b),(c,d));")
        b = parse_newick("((a,c),(b,d));")
        assert robinson_foulds(a, b) == 2  # each tree's one split unshared

    def test_rooting_invisible_to_unrooted_rf(self):
        a = parse_newick("((a,b),(c,d));")
        b = parse_newick("(((c,d),a),b);")
        assert robinson_foulds(a, b) == 0

    def test_different_leafsets_raise(self):
        a = parse_newick("(a,b);")
        b = parse_newick("(a,c);")
        with pytest.raises(QueryError):
            robinson_foulds(a, b)

    def test_normalized_bounds(self, rng):
        truth = yule_tree(20, rng=rng)
        noise = random_topology(truth.leaf_names(), rng)
        value = normalized_rf(truth, noise)
        assert 0.0 <= value <= 1.0

    def test_normalized_zero_is_identity(self, fig1):
        assert normalized_rf(fig1, fig1.copy()) == 0.0

    def test_fp_fn_decomposition(self):
        reference = parse_newick("(((a,b),c),(d,e));")
        estimate = parse_newick("(((a,c),b),(d,e));")
        comparison = compare_splits(reference, estimate)
        assert (
            comparison.rf_distance
            == comparison.false_positives + comparison.false_negatives
        )
        assert 0.0 <= comparison.false_positive_rate <= 1.0
        assert 0.0 <= comparison.false_negative_rate <= 1.0

    def test_unresolved_estimate_has_no_false_positives(self):
        reference = parse_newick("((a,b),(c,d),e);")
        star = parse_newick("(a,b,c,d,e);")
        comparison = compare_splits(reference, star)
        assert comparison.false_positives == 0
        assert comparison.false_negatives == 2


class TestBranchScore:
    def test_identity_is_zero(self, fig1):
        assert branch_score_distance(fig1, fig1.copy()) == 0.0

    def test_pure_length_difference(self):
        a = parse_newick("((a:1,b:1):1,(c:1,d:1):1);")
        b = parse_newick("((a:1,b:1):2,(c:1,d:1):1);")
        assert branch_score_distance(a, b) == pytest.approx(1.0)

    def test_symmetry(self, rng):
        first = yule_tree(10, rng=rng)
        second = yule_tree(10, rng=rng)
        assert branch_score_distance(first, second) == pytest.approx(
            branch_score_distance(second, first)
        )

    def test_sensitive_where_rf_is_blind(self):
        a = parse_newick("((a:1,b:1):1,(c:1,d:1):1);")
        b = parse_newick("((a:3,b:1):1,(c:1,d:1):1);")
        assert robinson_foulds(a, b) == 0
        assert branch_score_distance(a, b) > 0


class TestTripletDistance:
    def test_identity(self, rng):
        tree = yule_tree(8, rng=rng)
        assert triplet_distance(tree, tree.copy()) == 0.0

    def test_known_value(self):
        a = parse_newick("((a,b),c);")
        b = parse_newick("((a,c),b);")
        assert triplet_distance(a, b) == 1.0  # the single triple differs

    def test_range(self, rng):
        truth = yule_tree(10, rng=rng)
        noise = random_topology(truth.leaf_names(), rng)
        assert 0.0 <= triplet_distance(truth, noise) <= 1.0

    def test_sampled_estimate_close_to_exact(self):
        rng = np.random.default_rng(3)
        first = yule_tree(12, rng=rng)
        second = random_topology(first.leaf_names(), rng)
        exact = triplet_distance(first, second, max_triplets=None)
        sampled = triplet_distance(first, second, max_triplets=150, rng=rng)
        assert sampled == pytest.approx(exact, abs=0.2)

    def test_detects_rooting_differences(self):
        a = parse_newick("((a,b),(c,d));")
        b = parse_newick("(((c,d),a),b);")
        assert robinson_foulds(a, b) == 0  # unrooted-identical
        assert triplet_distance(a, b) > 0  # rooted-different

    def test_too_few_leaves_raise(self):
        a = parse_newick("(a,b);")
        with pytest.raises(QueryError):
            triplet_distance(a, a.copy())


class TestSameTopology:
    def test_order_insensitive(self):
        a = parse_newick("((a,b),c);")
        b = parse_newick("(c,(b,a));")
        assert same_topology(a, b)

    def test_shape_sensitive(self):
        a = parse_newick("((a,b),c);")
        b = parse_newick("((a,c),b);")
        assert not same_topology(a, b)
