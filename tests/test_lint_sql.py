"""crimson-lint v2 self-tests: the sql-* and wire-* rule families.

Three layers, matching the ISSUE 8 acceptance bar:

- the real package is clean under every new rule and every SQL sink
  site resolves statically (no unresolved strings, no tainted values);
- the seeded fixture trees (``sql_bad``, ``wire_drift``) trip every
  new rule id with the expected message on the expected line;
- the static statement census agrees with the *runtime* statement
  recorder from ``storage/sanitize.py`` on the warm/cold smoke
  workload: every statement a real store executes must already be in
  the census, and a census built over the drifted fixture fails the
  same containment check.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path

from repro.lint import default_root, lint_project, main
from repro.lint.framework import Project, run_rules
from repro.lint.rules_sql import (
    SqlInterpolation,
    SqlPlaceholders,
    SqlSchema,
    SqlSchemaSync,
    build_census,
    sql_sites,
)
from repro.lint.rules_wire import (
    WireErrorDetails,
    WireFieldDrift,
    WireRoundtrip,
)
from repro.lint.sqlgrammar import normalize_sql, parse_statement
from repro.storage import schema as schema_module
from repro.storage.api import AnalyticsRequest, QueryRequest
from repro.storage.sanitize import record_statements, statement_budget
from repro.storage.schema import (
    SHARD_TABLES,
    TABLE_COLUMNS,
    create_schema,
)
from repro.storage.store import CrimsonStore
from repro.trees.build import caterpillar, sample_tree

FIXTURES = Path(__file__).parent / "fixtures" / "lint"

SQL = (SqlSchema(), SqlPlaceholders(), SqlInterpolation(), SqlSchemaSync())
WIRE = (WireFieldDrift(), WireRoundtrip(), WireErrorDetails())


def lint_fixture(name: str, rules):
    project, findings = lint_project(FIXTURES / name, rules)
    assert not project.broken, project.broken
    return findings


class TestRealPackageIsClean:
    def test_sql_and_wire_rules_have_no_findings(self):
        _, findings = lint_project(default_root(), SQL + WIRE)
        assert not findings, "\n".join(f.render() for f in findings)

    def test_every_sink_site_resolves_statically(self):
        project = Project.load(default_root())
        sites = sql_sites(project)
        assert len(sites) > 50  # the repo really does talk this much SQL
        unresolved = [s for s in sites if s.texts is None]
        assert not unresolved, [(s.path, s.line, s.unresolved)
                                for s in unresolved]
        tainted = [
            (site.path, site.line)
            for site in sites
            for value in site.texts
            if value.taints()
        ]
        assert not tainted, tainted


class TestSqlRules:
    def test_seeded_violations_are_found(self):
        findings = lint_fixture("sql_bad", SQL)
        by_rule = {}
        for finding in findings:
            by_rule.setdefault(finding.rule, []).append(finding)

        schema = by_rule.pop("sql-schema")
        assert [(f.path, f.line) for f in schema] == [
            ("storage/repo.py", 6),
            ("storage/repo.py", 9),
            ("storage/repo.py", 15),
        ]
        messages = " | ".join(f.message for f in schema)
        assert "column 'weight' does not exist" in messages
        assert "unknown table 'missing_table'" in messages
        assert "table 'trees' has no column 'nope'" in messages

        placeholders = by_rule.pop("sql-placeholders")
        assert [(f.path, f.line) for f in placeholders] == [
            ("storage/repo.py", 11)
        ]
        assert "2 '?' placeholder(s)" in placeholders[0].message
        assert "1 argument(s)" in placeholders[0].message

        interpolation = by_rule.pop("sql-interpolation")
        assert [(f.path, f.line) for f in interpolation] == [
            ("storage/repo.py", 13)
        ]
        assert "parameter 'name'" in interpolation[0].message

        sync = by_rule.pop("sql-schema-sync")
        assert all(f.path == "storage/schema.py" for f in sync)
        sync_messages = " | ".join(f.message for f in sync)
        assert "'ghosts'" in sync_messages  # declared but never created
        assert "'phantom'" in sync_messages or "SHARD_TABLES" in sync_messages
        assert not by_rule

    def test_clean_statements_pass(self, tmp_path):
        (tmp_path / "storage").mkdir()
        (tmp_path / "storage" / "schema.py").write_text(
            'TABLE_COLUMNS = {"trees": ("tree_id", "name")}\n'
            'DDL_STATEMENTS = (\n'
            '    "CREATE TABLE IF NOT EXISTS trees '
            '(tree_id INTEGER PRIMARY KEY, name TEXT)",\n'
            ')\n'
        )
        (tmp_path / "storage" / "repo.py").write_text(
            "def good(db, tree_id):\n"
            '    db.query_one("SELECT name FROM trees '
            'WHERE tree_id = ?", (tree_id,))\n'
        )
        _, findings = lint_project(tmp_path, SQL)
        assert not findings, "\n".join(f.render() for f in findings)


class TestWireRules:
    def test_seeded_violations_are_found(self):
        findings = lint_fixture("wire_drift", WIRE)
        rules = sorted(f.rule for f in findings)
        assert rules == [
            "wire-error-details",
            "wire-error-details",
            "wire-error-details",
            "wire-field-drift",
            "wire-field-drift",
            "wire-field-drift",
            "wire-field-drift",
            "wire-roundtrip",
        ]
        drift = " | ".join(
            f.message for f in findings if f.rule == "wire-field-drift"
        )
        assert "encode_packet never writes field 'flags'" in drift
        assert "writes key 'extra' that Packet has no field for" in drift
        assert "constructs Packet without its 'flags' field" in drift
        assert "never reads key 'flags'" in drift

        roundtrip = next(f for f in findings if f.rule == "wire-roundtrip")
        assert "encode_orphan has no matching decode_orphan" \
            in roundtrip.message

        details = " | ".join(
            f.message for f in findings if f.rule == "wire-error-details"
        )
        assert "DriftError defines wire_details but no apply_wire_details" \
            in details
        assert "DriftError.__init__ requires ['code']" in details
        assert "HalfError defines apply_wire_details but no wire_details" \
            in details


class TestStatementCensus:
    def test_census_shape_and_coverage(self):
        census = build_census(Project.load(default_root()))
        assert census["version"] == 1
        assert census["unresolved"] == []
        assert census["sites"] and census["statements"]
        # Site statements are drawn from the same normalized pool.
        pool = set(census["statements"])
        for site in census["sites"]:
            assert site["statements"], site
            assert set(site["statements"]) <= pool
        # Every parsed statement is one the grammar understands.
        for text in census["statements"]:
            assert parse_statement(text).kind != "other" or \
                text.upper().startswith("PRAGMA")

    def test_runtime_smoke_workload_is_contained_in_the_census(
        self, sanitized, tmp_path
    ):
        census = build_census(Project.load(default_root()))
        known = set(census["statements"])
        path = str(tmp_path / "census.db")
        with record_statements() as recorded:
            with CrimsonStore.open(path, readers=2) as store:
                store.trees.store_tree(sample_tree(), name="fig1", f=2)
                store.trees.store_tree(caterpillar(30), name="cat", f=2)
                lca = QueryRequest.lca("fig1", "Lla", "Syn")
                store.query(lca)  # cold: hits SQL
                store.analyze(AnalyticsRequest.consensus("fig1", "fig1"))
                with statement_budget(0):  # warm: no statements at all
                    store.query(lca)
        assert recorded, "the sanitizer recorded nothing — is it active?"
        executed = {normalize_sql(sql) for _, sql in recorded}
        missing = sorted(executed - known)
        assert not missing, (
            "statements executed at runtime but absent from the static "
            f"census: {missing}"
        )

    def test_drifted_fixture_census_fails_the_containment_check(self):
        census = build_census(Project.load(default_root()))
        known = set(census["statements"])
        drifted = build_census(Project.load(FIXTURES / "sql_bad"))
        assert "SELECT * FROM missing_table" in drifted["statements"]
        assert not set(drifted["statements"]) <= known


class TestSchemaStructuredData:
    def _table_info(self, connection, table):
        rows = connection.execute(
            f"PRAGMA table_info({table})"
        ).fetchall()
        return tuple(row[1] for row in rows)

    def test_table_columns_match_the_primary_schema(self):
        connection = sqlite3.connect(":memory:")
        try:
            create_schema(connection)
            live = {
                row[0]
                for row in connection.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table'"
                )
                if not row[0].startswith("sqlite_")
            }
            assert live == set(TABLE_COLUMNS)
            for table, columns in TABLE_COLUMNS.items():
                assert self._table_info(connection, table) == columns, table
        finally:
            connection.close()

    def test_shard_tables_match_the_shard_schema(self):
        connection = sqlite3.connect(":memory:")
        try:
            create_schema(connection, shard=True)
            live = {
                row[0]
                for row in connection.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table'"
                )
                if not row[0].startswith("sqlite_")
            }
            assert live == set(SHARD_TABLES)
            for table in SHARD_TABLES:
                assert self._table_info(connection, table) == \
                    TABLE_COLUMNS[table], table
        finally:
            connection.close()

    def test_shard_tables_are_a_subset_of_table_columns(self):
        assert set(SHARD_TABLES) <= set(TABLE_COLUMNS)
        assert schema_module.SHARD_TABLES is SHARD_TABLES


class TestOutputFormats:
    def test_github_format_emits_error_annotations(self, capsys):
        code = main(
            [
                "--root", str(FIXTURES / "sql_bad"),
                "--format", "github",
                "--rules", "sql-schema,sql-placeholders",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        # Every line but the trailing human summary is an annotation.
        *annotations, summary = [line for line in out.splitlines() if line]
        assert "4 problem(s)" in summary
        assert annotations, out
        for line in annotations:
            assert line.startswith("::error file="), line
            assert ",line=" in line and "::" in line[8:]
        assert any("sql-schema" in line for line in annotations)

    def test_github_format_on_clean_tree_emits_no_annotations(self, capsys):
        assert main(["--format", "github"]) == 0
        out = capsys.readouterr().out
        assert "::error" not in out
        assert "no problems" in out

    def test_sql_census_flag_writes_the_census_file(self, capsys, tmp_path):
        out_path = tmp_path / "census.json"
        assert main(["--sql-census", str(out_path)]) == 0
        capsys.readouterr()
        census = json.loads(out_path.read_text())
        assert census["version"] == 1
        assert census["statements"]
        assert census["unresolved"] == []

    def test_crimson_lint_forwards_the_census_flag(self, capsys, tmp_path):
        from repro.cli.main import main as crimson

        out_path = tmp_path / "cli-census.json"
        assert crimson(["lint", "--sql-census", str(out_path)]) == 0
        capsys.readouterr()
        assert json.loads(out_path.read_text())["statements"]
