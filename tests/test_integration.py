"""Cross-module integration tests: the full Crimson workflows.

Each test walks one of the paper's demonstration scenarios end to end:
generate or parse a gold standard, load it through the Data Loader,
query it through the repositories, benchmark algorithms against it, and
round-trip results through the serializers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchmark.manager import ALL_ALGORITHMS, BenchmarkManager
from repro.benchmark.metrics import normalized_rf, robinson_foulds
from repro.benchmark.consensus import majority_consensus_tree
from repro.core.lca import LcaService
from repro.core.pattern import match_pattern
from repro.core.projection import project_tree
from repro.simulation.birth_death import birth_death_tree, yule_tree
from repro.simulation.models import hky85, jc69
from repro.simulation.rates import SiteRates
from repro.simulation.seqgen import evolve_sequences
from repro.storage.database import CrimsonDatabase
from repro.storage.loader import DataLoader
from repro.storage.species_repository import SpeciesRepository
from repro.storage.tree_repository import TreeRepository
from repro.trees.newick import parse_newick, write_newick
from repro.trees.nexus import NexusDocument, parse_nexus, write_nexus


class TestGoldStandardLifecycle:
    """simulate → load → query → project → verify, all through the store."""

    def test_full_lifecycle(self, db):
        rng = np.random.default_rng(100)
        gold = birth_death_tree(80, 1.0, 0.25, rng=rng)
        rates = SiteRates(300, rng, alpha=0.8)
        sequences = evolve_sequences(
            gold, hky85(2.5), 300, rng=rng, site_rates=rates, scale=0.2
        )
        loader = DataLoader(db)
        handle = loader.load_tree(gold, name="gold", sequences=sequences)

        # Catalogue facts reflect the generated tree.
        assert handle.info.n_leaves == 80
        assert handle.info.n_nodes == gold.size()

        # SQL LCA agrees with the in-memory layered index on samples.
        index = LcaService(gold, "layered")
        leaves = gold.leaves()
        for a, b in zip(leaves[::7], leaves[1::7]):
            memory_lca = index.lca(a, b)
            sql_lca = handle.lca(a.name, b.name)
            assert sql_lca.dist_from_root == pytest.approx(
                gold.distances_from_root()[id(memory_lca)]
            )

        # Projection from the fetched tree equals projection in memory.
        sample = [leaf.name for leaf in leaves[:12]]
        from_store = project_tree(handle.fetch_tree(), sample)
        in_memory = project_tree(gold, sample)
        assert from_store.equals(in_memory, tolerance=1e-9)

        # Species data round-trips.
        species = SpeciesRepository(db)
        fetched = species.sequences_for(handle, sample)
        assert fetched == {name: sequences[name] for name in sample}


class TestNexusPipeline:
    """NEXUS in → repository → NEXUS out."""

    def test_document_roundtrip_through_store(self, db, rng):
        gold = yule_tree(25, rng=rng)
        sequences = evolve_sequences(gold, jc69(), 120, rng=rng, scale=0.3)
        document = NexusDocument(
            taxa=gold.leaf_names(), trees=[("gold", gold)]
        )
        from repro.trees.nexus import CharacterMatrix

        document.characters = CharacterMatrix(rows=dict(sequences))
        text = write_nexus(document)

        loader = DataLoader(db)
        handles = loader.load_nexus_text(text)
        fetched = handles[0].fetch_tree()
        assert fetched.equals(gold, tolerance=1e-9)

        exported = write_nexus(
            NexusDocument(taxa=fetched.leaf_names(), trees=[("gold", fetched)])
        )
        assert parse_nexus(exported).trees[0][1].equals(gold, tolerance=1e-9)


class TestBenchmarkScenario:
    """The demo scenario: who reconstructs the gold standard best?"""

    def test_nj_beats_random_on_stored_gold(self, db):
        rng = np.random.default_rng(7)
        gold = yule_tree(100, rng=rng)
        sequences = evolve_sequences(gold, jc69(), 600, rng=rng, scale=0.25)
        DataLoader(db).load_tree(gold, name="gold", sequences=sequences)

        manager = BenchmarkManager(
            db,
            algorithms={
                "nj-jc69": ALL_ALGORITHMS["nj-jc69"],
                "upgma-jc69": ALL_ALGORITHMS["upgma-jc69"],
                "random": ALL_ALGORITHMS["random"],
            },
        )
        rows = manager.run_sweep("gold", [12, 24], n_trials=3, rng=rng)
        by_key = {(row.algorithm, row.sample_size): row for row in rows}
        for k in (12, 24):
            assert (
                by_key[("nj-jc69", k)].mean_normalized_rf
                < by_key[("random", k)].mean_normalized_rf
            )

    def test_time_sampling_pipeline(self, db):
        rng = np.random.default_rng(8)
        gold = yule_tree(60, rng=rng)
        sequences = evolve_sequences(gold, jc69(), 200, rng=rng, scale=0.2)
        DataLoader(db).load_tree(gold, name="gold", sequences=sequences)
        horizon = max(gold.distances_from_root().values())
        manager = BenchmarkManager(db)
        trial = manager.run_trial(
            "gold", k=10, method="time", time=horizon * 0.4, rng=rng
        )
        assert len(trial.sample) == 10
        assert set(trial.projection.leaf_names()) == set(trial.sample)

    def test_consensus_over_replicates(self, db):
        """Aggregate NJ estimates across replicate samples of the same
        taxa; the consensus should be at least as close to the truth as a
        random tree."""
        rng = np.random.default_rng(9)
        gold = yule_tree(30, rng=rng)
        taxa = sorted(gold.leaf_names())[:10]
        projection = project_tree(gold, taxa)
        estimates = []
        for _ in range(5):
            sequences = evolve_sequences(gold, jc69(), 250, rng=rng, scale=0.25)
            sample = {name: sequences[name] for name in taxa}
            estimates.append(ALL_ALGORITHMS["nj-jc69"](sample))
        consensus = majority_consensus_tree(estimates)
        from repro.reconstruction.random_tree import random_topology

        noise = random_topology(taxa, rng)
        assert normalized_rf(projection, consensus) <= normalized_rf(
            projection, noise
        ) + 1e-9


class TestPatternWorkflow:
    def test_pattern_match_against_stored_tree(self, db, rng):
        gold = yule_tree(40, rng=rng)
        loader = DataLoader(db)
        handle = loader.load_tree(gold, name="gold")
        fetched = handle.fetch_tree()

        # A pattern cut from the truth always matches.
        taxa = [leaf.name for leaf in gold.leaves()[:6]]
        pattern = project_tree(gold, taxa)
        assert match_pattern(fetched, pattern, compare_lengths=True).matched

        # A shuffled pattern matches only as topology, if at all.
        shuffled = parse_newick(write_newick(pattern))
        first, second = shuffled.root.children[:2]
        shuffled.root.children[0], shuffled.root.children[1] = second, first
        result = match_pattern(fetched, shuffled)
        assert result.matched == (
            shuffled.topology_key() == pattern.topology_key()
            and shuffled.equals(pattern, compare_lengths=False)
        )


class TestDeepTreeStorage:
    """Challenge 1: huge trees, small query footprints."""

    def test_deep_chain_store_and_query(self, db):
        from repro.trees.build import caterpillar

        tree = caterpillar(2000)
        repo = TreeRepository(db)
        handle = repo.store_tree(tree, name="deep", f=8)
        assert handle.info.max_depth == 1999
        assert handle.info.n_layers >= 3
        # Point queries resolve without materializing the tree.
        assert handle.lca("t1999", "t2000").depth == 1998
        assert handle.node_by_name("t1000").is_leaf

    def test_many_trees_coexist(self, db, rng):
        repo = TreeRepository(db)
        for index in range(8):
            repo.store_tree(yule_tree(20, rng=rng), name=f"gold-{index}")
        assert len(repo.list_trees()) == 8
        repo.delete_tree("gold-3")
        assert len(repo.list_trees()) == 7
        assert repo.open("gold-5").info.n_leaves == 20
