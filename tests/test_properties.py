"""Property-based tests (hypothesis) on the core invariants.

These are the system's load-bearing guarantees:

* the layered index agrees with naive LCA on arbitrary trees and bounds,
* labels never exceed ``f``,
* the decomposition partitions the node set,
* projection equals the brute-force induced subtree,
* serialization round-trips,
* NJ is exact on additive matrices, UPGMA on ultrametric ones,
* RF satisfies metric axioms on a common leaf set.
"""

from __future__ import annotations

import random

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.benchmark.metrics import robinson_foulds
from repro.core.decompose import decompose
from repro.core.dewey import DeweyIndex
from repro.core.hindex import HierarchicalIndex
from repro.core.projection import brute_force_projection, project_tree
from repro.reconstruction.distances import tree_distance_matrix
from repro.reconstruction.nj import neighbor_joining
from repro.reconstruction.upgma import upgma
from repro.simulation.birth_death import coalescent_tree, yule_tree
from repro.trees.newick import parse_newick, write_newick
from repro.trees.node import Node
from repro.trees.traversal import naive_lca, preorder_intervals
from repro.trees.tree import PhyloTree

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def attachment_trees(draw, max_nodes: int = 40):
    """Random trees via uniform attachment; every node named & weighted."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = random.Random(seed)
    root = Node("n0")
    nodes = [root]
    for index in range(1, n):
        parent = rng.choice(nodes)
        child = Node(f"n{index}", rng.uniform(0.01, 3.0))
        parent.add_child(child)
        nodes.append(child)
    return PhyloTree(root)


label_bounds = st.integers(min_value=1, max_value=6)

COMMON_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# ----------------------------------------------------------------------
# Index invariants
# ----------------------------------------------------------------------


@COMMON_SETTINGS
@given(tree=attachment_trees(), f=label_bounds, seed=st.integers(0, 2**31))
def test_layered_lca_equals_naive(tree, f, seed):
    index = HierarchicalIndex(tree, f)
    nodes = list(tree.preorder())
    rng = random.Random(seed)
    for _ in range(15):
        a = rng.choice(nodes)
        b = rng.choice(nodes)
        assert index.lca(a, b) is naive_lca(a, b)


@COMMON_SETTINGS
@given(tree=attachment_trees(), f=label_bounds)
def test_labels_bounded_by_f(tree, f):
    index = HierarchicalIndex(tree, f)
    assert index.max_label_length() <= f


@COMMON_SETTINGS
@given(tree=attachment_trees(), f=label_bounds)
def test_decomposition_partitions_nodes(tree, f):
    decomposition = decompose(tree, f)
    member_ids = [
        id(node) for block in decomposition.blocks for node, _ in block.members
    ]
    assert len(member_ids) == len(set(member_ids))
    assert set(member_ids) == {id(node) for node in tree.preorder()}


@COMMON_SETTINGS
@given(tree=attachment_trees(), f=label_bounds)
def test_dewey_prefix_of_canonical_positions(tree, f):
    """Within a block, a node's label extends its parent's label whenever
    the parent is in the same block."""
    decomposition = decompose(tree, f)
    for node in tree.preorder():
        if node.parent is None:
            continue
        if decomposition.block_of[id(node)] == decomposition.block_of[id(node.parent)]:
            parent_label = decomposition.label_of[id(node.parent)]
            label = decomposition.label_of[id(node)]
            assert label[: len(parent_label)] == parent_label
            assert len(label) == len(parent_label) + 1


@COMMON_SETTINGS
@given(tree=attachment_trees())
def test_plain_dewey_lca_equals_naive(tree):
    index = DeweyIndex(tree)
    nodes = list(tree.preorder())
    rng = random.Random(17)
    for _ in range(15):
        a = rng.choice(nodes)
        b = rng.choice(nodes)
        assert index.lca(a, b) is naive_lca(a, b)


@COMMON_SETTINGS
@given(tree=attachment_trees())
def test_preorder_interval_is_descendant_test(tree):
    intervals = preorder_intervals(tree)
    nodes = list(tree.preorder())
    rng = random.Random(23)
    for _ in range(20):
        a = rng.choice(nodes)
        d = rng.choice(nodes)
        low, high = intervals[id(a)]
        inside = low <= intervals[id(d)][0] <= high
        truth = a is d or a.is_ancestor_of(d)
        assert inside == truth


# ----------------------------------------------------------------------
# Projection
# ----------------------------------------------------------------------


@COMMON_SETTINGS
@given(
    tree=attachment_trees(),
    seed=st.integers(0, 2**31),
    f=label_bounds,
)
def test_projection_equals_brute_force(tree, seed, f):
    leaves = [leaf.name for leaf in tree.root.leaves()]
    rng = random.Random(seed)
    k = rng.randint(1, len(leaves))
    sample = rng.sample(leaves, k)
    from repro.core.lca import LcaService

    fast = project_tree(tree, sample, lca_service=LcaService(tree, "layered", f=f))
    slow = brute_force_projection(tree, sample)
    # Edge lengths come from different summation orders; compare with a
    # floating tolerance rather than textually.
    assert fast.equals(slow, tolerance=1e-9)


@COMMON_SETTINGS
@given(tree=attachment_trees(), seed=st.integers(0, 2**31))
def test_projection_idempotent(tree, seed):
    """Projecting a projection over the same leaves is the identity."""
    leaves = [leaf.name for leaf in tree.root.leaves()]
    rng = random.Random(seed)
    sample = rng.sample(leaves, rng.randint(2, len(leaves)) if len(leaves) > 1 else 1)
    once = project_tree(tree, sample)
    twice = project_tree(once, sample)
    assert once.equals(twice, tolerance=1e-9)


# ----------------------------------------------------------------------
# Serialization round-trips
# ----------------------------------------------------------------------


@COMMON_SETTINGS
@given(tree=attachment_trees())
def test_newick_roundtrip(tree):
    again = parse_newick(write_newick(tree))
    assert again.equals(tree)


_taxon_names = st.lists(
    st.text(
        alphabet=st.characters(
            codec="ascii", categories=("L", "N"), include_characters="_' ():,"
        ),
        min_size=1,
        max_size=12,
    ).filter(lambda s: s.strip() == s and s != ""),
    min_size=2,
    max_size=8,
    unique=True,
)


@COMMON_SETTINGS
@given(names=_taxon_names)
def test_newick_label_quoting_roundtrip(names):
    root = Node()
    for name in names:
        root.new_child(name, 1.0)
    tree = PhyloTree(root)
    again = parse_newick(write_newick(tree))
    assert again.leaf_names() == names


# ----------------------------------------------------------------------
# Reconstruction guarantees
# ----------------------------------------------------------------------


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(n=st.integers(4, 14), seed=st.integers(0, 2**31))
def test_nj_exact_on_additive_matrices(n, seed):
    truth = yule_tree(n, rng=np.random.default_rng(seed))
    estimate = neighbor_joining(tree_distance_matrix(truth))
    assert robinson_foulds(truth, estimate) == 0


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(n=st.integers(4, 14), seed=st.integers(0, 2**31))
def test_upgma_exact_on_ultrametric_matrices(n, seed):
    truth = coalescent_tree(n, rng=np.random.default_rng(seed))
    estimate = upgma(tree_distance_matrix(truth))
    assert robinson_foulds(truth, estimate) == 0


# ----------------------------------------------------------------------
# Metric axioms
# ----------------------------------------------------------------------


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(n=st.integers(4, 10), seed=st.integers(0, 2**31))
def test_rf_metric_axioms(n, seed):
    rng = np.random.default_rng(seed)
    from repro.reconstruction.random_tree import random_topology

    names = [f"t{i}" for i in range(n)]
    a = random_topology(names, rng)
    b = random_topology(names, rng)
    c = random_topology(names, rng)
    assert robinson_foulds(a, a.copy()) == 0
    assert robinson_foulds(a, b) == robinson_foulds(b, a)
    assert robinson_foulds(a, c) <= robinson_foulds(a, b) + robinson_foulds(b, c)
