"""Unit tests for minimal spanning clade queries."""

from __future__ import annotations

import pytest

from repro.core.clade import clade_leaves, is_monophyletic, minimal_spanning_clade
from repro.core.lca import LcaService
from repro.errors import QueryError


class TestMinimalSpanningClade:
    def test_sibling_pair(self, fig1):
        nodes = minimal_spanning_clade(fig1, ["Lla", "Spy"])
        assert {node.name for node in nodes} == {"x", "Lla", "Spy"}

    def test_cross_subtree_pair(self, fig1):
        nodes = minimal_spanning_clade(fig1, ["Lla", "Bha"])
        assert {node.name for node in nodes} == {"A", "x", "Lla", "Spy", "Bha"}

    def test_whole_tree(self, fig1):
        nodes = minimal_spanning_clade(fig1, ["Syn", "Bsu"])
        assert len(nodes) == fig1.size()

    def test_single_leaf(self, fig1):
        nodes = minimal_spanning_clade(fig1, ["Lla"])
        assert [node.name for node in nodes] == ["Lla"]

    def test_interior_name_allowed(self, fig1):
        nodes = minimal_spanning_clade(fig1, ["x", "Bha"])
        assert {node.name for node in nodes} == {"A", "x", "Lla", "Spy", "Bha"}

    def test_preorder_output(self, fig1):
        nodes = minimal_spanning_clade(fig1, ["Lla", "Bha"])
        ranks = [fig1.preorder_rank(node) for node in nodes]
        assert ranks == sorted(ranks)

    def test_empty_raises(self, fig1):
        with pytest.raises(QueryError):
            minimal_spanning_clade(fig1, [])

    def test_unknown_name_raises(self, fig1):
        with pytest.raises(QueryError):
            minimal_spanning_clade(fig1, ["ghost"])

    @pytest.mark.parametrize("strategy", ["naive", "dewey", "layered"])
    def test_any_strategy(self, fig1, strategy):
        service = LcaService(fig1, strategy)
        nodes = minimal_spanning_clade(fig1, ["Lla", "Spy"], service)
        assert {node.name for node in nodes} == {"x", "Lla", "Spy"}


class TestCladeLeaves:
    def test_leaves_only(self, fig1):
        assert set(clade_leaves(fig1, ["Lla", "Bha"])) == {"Lla", "Spy", "Bha"}


class TestMonophyly:
    def test_true_clade(self, fig1):
        assert is_monophyletic(fig1, ["Lla", "Spy"])

    def test_clade_with_implied_members(self, fig1):
        assert is_monophyletic(fig1, ["Lla", "Spy", "Bha"])

    def test_not_a_clade(self, fig1):
        assert not is_monophyletic(fig1, ["Lla", "Bha"])  # Spy missing

    def test_all_leaves_are_monophyletic(self, fig1):
        assert is_monophyletic(fig1, fig1.leaf_names())

    def test_empty_raises(self, fig1):
        with pytest.raises(QueryError):
            is_monophyletic(fig1, [])
