"""Observability subsystem tests: registry, spans, the stats surface.

The guarantees from ISSUE 9, checked here rather than inferred:

* enabling metrics must not change what executes — a warm ``lca`` /
  ``consensus`` under :func:`statement_budget(0)` still runs zero SQL;
* recording a histogram sample allocates nothing (the bucket list is
  fixed at construction and never replaced);
* a disabled registry hands out shared null instruments;
* the ``stats`` verb answers with the same counter names and histogram
  shapes from a :class:`LocalSession` and over a live server, with the
  server stamping ``server_ms`` so the client can separate wire
  overhead from server work.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ProtocolError, QueryError
from repro.obs import (
    MetricsRegistry,
    SlowQueryLog,
    Span,
    activate,
    current_span,
    render_prometheus,
    render_table,
)
from repro.obs.metrics import (
    HISTOGRAM_BUCKETS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    LatencyHistogram,
)
from repro.server import CrimsonServer, RemoteSession
from repro.storage import wire
from repro.storage.api import (
    AnalyticsRequest,
    QueryRequest,
    StatsRequest,
    StatsSnapshot,
)
from repro.storage.sanitize import statement_budget
from repro.storage.store import CrimsonStore
from repro.trees.build import sample_tree

HISTOGRAM_KEYS = {"count", "p50_ms", "p95_ms", "p99_ms", "mean_ms", "max_ms"}


class TestInstruments:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.counter("c") is counter
        gauge = registry.gauge("g")
        gauge.inc()
        gauge.inc()
        gauge.dec()
        assert gauge.value == 1.0
        gauge.set(7.5)
        assert gauge.value == 7.5

    def test_histogram_quantile_is_clamped_bucket_upper_bound(self):
        histogram = LatencyHistogram("h")
        histogram.record(0.001)  # 1000 µs → bucket upper bound 1024 µs
        figures = histogram.as_dict()
        # The readout is clamped to the observed max (1.0 ms), so a
        # single sample reads back exactly.
        assert figures["count"] == 1
        assert figures["p50_ms"] == figures["p99_ms"] == 1.0
        assert figures["max_ms"] == 1.0
        assert set(figures) == HISTOGRAM_KEYS

    def test_histogram_quantiles_rank_across_buckets(self):
        histogram = LatencyHistogram("h")
        for _ in range(98):
            histogram.record(0.001)  # ~1 ms
        for _ in range(2):
            histogram.record(0.1)  # ~100 ms
        figures = histogram.as_dict()
        assert figures["p50_ms"] <= 2.0  # within the 2x bucket error
        assert figures["p99_ms"] >= 50.0
        assert figures["max_ms"] == 100.0

    def test_histogram_recording_is_allocation_free_and_bounded(self):
        histogram = LatencyHistogram("h")
        buckets = histogram._counts
        assert len(buckets) == HISTOGRAM_BUCKETS
        # Nothing — not zeros, not negatives, not a week in seconds —
        # may grow or replace the bucket list.
        for seconds in (0.0, -3.0, 1e-9, 1e-6, 0.5, 604800.0, 1e9):
            histogram.record(seconds)
        assert histogram._counts is buckets
        assert len(buckets) == HISTOGRAM_BUCKETS
        assert histogram.count == 7
        assert sum(buckets) == 7
        # The absurdly large samples clamp into the last bucket.
        assert buckets[HISTOGRAM_BUCKETS - 1] == 2

    def test_disabled_registry_hands_out_shared_null_instruments(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c")
        gauge = registry.gauge("g")
        histogram = registry.histogram("h")
        assert counter is NULL_COUNTER
        assert gauge is NULL_GAUGE
        assert histogram is NULL_HISTOGRAM
        counter.inc(100)
        gauge.set(9.0)
        gauge.inc()
        histogram.record(1.0)
        assert counter.value == 0
        assert gauge.value == 0.0
        assert histogram.count == 0
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_registry_snapshot_is_sorted_and_plain(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.histogram("z").record(0.002)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "b"]
        assert snapshot["counters"] == {"a": 2, "b": 1}
        assert set(snapshot["histograms"]["z"]) == HISTOGRAM_KEYS
        # JSON-plain end to end (the wire and the renderers rely on it).
        json.dumps(snapshot)


class TestSpans:
    def test_phases_accumulate_per_label(self):
        span = Span("query", detail="lca gold")
        with span.phase("engine"):
            pass
        with span.phase("engine"):
            pass
        with span.phase("write"):
            pass
        assert set(span.phases) == {"engine", "write"}
        duration = span.finish()
        assert duration >= 0.0
        entry = span.as_dict()
        assert entry["verb"] == "query"
        assert entry["outcome"] == "ok"
        assert entry["error_kind"] is None

    def test_activation_is_scoped_and_restores_the_previous_span(self):
        assert current_span() is None
        outer, inner = Span("a"), Span("b")
        with activate(outer):
            assert current_span() is outer
            with activate(inner):
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None

    def test_fail_marks_the_outcome(self):
        span = Span("query")
        span.fail("QueryError")
        span.annotate("operation", "lca")
        span.finish()
        entry = span.as_dict()
        assert entry["outcome"] == "error"
        assert entry["error_kind"] == "QueryError"
        assert entry["annotations"] == {"operation": "lca"}


class TestSlowQueryLog:
    @staticmethod
    def _finished_span(verb: str, duration_ms: float) -> Span:
        span = Span(verb)
        span.finish()
        span.duration_ms = duration_ms
        return span

    def test_threshold_filters_and_ring_retains_newest(self):
        log = SlowQueryLog(capacity=2, threshold_ms=10.0)
        assert not log.observe(self._finished_span("fast", 1.0))
        assert not log.observe(Span("unfinished"))  # never finished
        for index in range(3):
            assert log.observe(self._finished_span(f"slow{index}", 50.0))
        assert log.recorded == 3
        entries = log.entries()
        assert [entry["verb"] for entry in entries] == ["slow1", "slow2"]


class TestWarmPathStaysFree:
    def test_warm_query_and_analyze_execute_zero_sql_with_metrics(
        self, sanitized
    ):
        with CrimsonStore.open() as store:
            assert store.metrics.enabled
            store.trees.store_tree(sample_tree(), name="a", f=2)
            store.trees.store_tree(sample_tree(), name="b", f=2)
            lca = QueryRequest.lca("a", "Lla", "Syn")
            consensus = AnalyticsRequest.consensus("a", "b")
            store.query(lca)  # warm the handles' row caches
            store.analyze(consensus)
            with statement_budget(0) as budget:
                result = store.query(lca)
                outcome = store.analyze(consensus)
            assert budget.spent == 0
            assert result.node is not None
            assert outcome.consensus is not None
            # And the instrumentation saw all four requests.
            snapshot = store.metrics.snapshot()
            assert snapshot["counters"]["store.query.requests"] == 2
            assert snapshot["counters"]["store.analyze.requests"] == 2
            assert snapshot["histograms"]["store.query.lca"]["count"] == 2
            assert (
                snapshot["histograms"]["store.analyze.consensus"]["count"]
                == 2
            )


class TestStoreStats:
    def test_sections_narrow_the_snapshot(self):
        with CrimsonStore.open() as store:
            store.trees.store_tree(sample_tree(), f=2)
            store.query(QueryRequest.lca("fig1-sample", "Lla", "Syn"))
            narrow = store.stats(StatsRequest(sections=("admission",)))
            assert narrow.counters == {}
            assert narrow.histograms == {}
            assert narrow.caches == {}
            assert narrow.admission["admitted"] == 1
            full = store.stats()
            assert full.counters["store.query.requests"] == 1
            assert full.caches["handles"] >= 1
            assert "total" in full.caches
            assert "writer_statements" in full.pool
            assert full.service["transport"] == "local"

    def test_unknown_section_raises_a_typed_query_error(self):
        with pytest.raises(QueryError, match="bogus"):
            StatsRequest(sections=("bogus",))

    def test_error_requests_count_errors(self):
        with CrimsonStore.open() as store:
            store.trees.store_tree(sample_tree(), f=2)
            with pytest.raises(QueryError):
                store.query(
                    QueryRequest.lca("fig1-sample", "Lla", "no-such-taxon")
                )
            snapshot = store.stats()
            assert snapshot.counters["store.query.errors"] == 1


class TestStatsWire:
    def test_snapshot_roundtrips_through_json(self):
        with CrimsonStore.open() as store:
            store.trees.store_tree(sample_tree(), f=2)
            store.query(QueryRequest.lca("fig1-sample", "Lla", "Syn"))
            snapshot = store.stats()
        payload = json.loads(json.dumps(wire.encode_stats(snapshot)))
        decoded = wire.decode_stats(payload)
        assert isinstance(decoded, StatsSnapshot)
        assert decoded.counters == dict(snapshot.counters)
        assert decoded.histograms == {
            name: dict(figures)
            for name, figures in snapshot.histograms.items()
        }
        assert decoded.service == dict(snapshot.service)

    def test_request_roundtrip_and_validation(self):
        encoded = wire.encode_stats_request(
            StatsRequest(sections=("metrics", "pool"))
        )
        decoded = wire.decode_stats_request(
            json.loads(json.dumps(encoded))
        )
        assert decoded.sections == ("metrics", "pool")
        with pytest.raises(ProtocolError):
            wire.decode_stats_request(
                {"protocol": wire.PROTOCOL_VERSION, "sections": "metrics"}
            )

    def test_malformed_snapshot_payload_raises_protocol_error(self):
        with pytest.raises(ProtocolError, match="stats"):
            wire.decode_stats({"protocol": wire.PROTOCOL_VERSION})


class TestRenderers:
    def _snapshot(self) -> dict:
        with CrimsonStore.open() as store:
            store.trees.store_tree(sample_tree(), f=2)
            store.query(QueryRequest.lca("fig1-sample", "Lla", "Syn"))
            return store.stats().as_dict()

    def test_prometheus_exposition_shape(self):
        text = render_prometheus(self._snapshot())
        assert "# TYPE crimson_store_query_requests counter" in text
        assert "crimson_store_query_requests 1" in text
        assert "# TYPE crimson_store_query_lca summary" in text
        assert 'crimson_store_query_lca{quantile="0.5"}' in text
        assert "crimson_store_query_lca_count 1" in text
        assert "# TYPE crimson_admission_admitted gauge" in text

    def test_table_renders_every_populated_section(self):
        text = render_table(self._snapshot())
        assert "service:" in text
        assert "store.query.requests" in text
        assert "p95_ms" in text
        assert "admission.admitted" in text

    def test_empty_snapshot_renders_placeholders(self):
        assert render_table({}) == "no metrics recorded\n"
        assert render_prometheus({}) == ""


class TestServerDifferential:
    def test_local_and_remote_snapshots_share_names_and_shapes(
        self, tmp_path
    ):
        path = str(tmp_path / "obs.db")
        with CrimsonStore.open(path, readers=2) as store:
            store.trees.store_tree(sample_tree(), f=2)
            with CrimsonServer(store, port=0) as server:
                host, port = server.address
                with RemoteSession(host, port) as session:
                    session.query(
                        QueryRequest.lca("fig1-sample", "Lla", "Syn")
                    )
                    remote = session.stats()
                    local = store.session().stats()
        # One registry feeds both transports, so every name the remote
        # snapshot carries must appear locally with the same shape.
        assert set(remote.counters) <= set(local.counters)
        assert set(remote.histograms) <= set(local.histograms)
        for name in (
            "store.query.requests",
            "server.requests",
            "server.bytes_in",
            "server.bytes_out",
        ):
            assert name in remote.counters
            assert name in local.counters
        assert "server.latency.query" in remote.histograms
        for figures in remote.histograms.values():
            assert set(figures) == HISTOGRAM_KEYS
        assert "server.inflight" in remote.gauges
        assert remote.service["transport"] == "tcp"
        assert local.service["transport"] == "local"
        assert remote.admission["admitted"] == local.admission["admitted"]

    def test_server_ms_stamp_separates_wire_overhead(self, tmp_path):
        path = str(tmp_path / "wirems.db")
        with CrimsonStore.open(path) as store:
            store.trees.store_tree(sample_tree(), f=2)
            with CrimsonServer(store, port=0) as server:
                host, port = server.address
                with RemoteSession(host, port) as session:
                    assert session.last_round_trip_ms is None
                    assert session.last_wire_overhead_ms is None
                    session.query(
                        QueryRequest.lca("fig1-sample", "Lla", "Syn")
                    )
                    assert session.last_round_trip_ms is not None
                    assert session.last_server_ms is not None
                    overhead = session.last_wire_overhead_ms
                    assert overhead is not None and overhead >= 0.0
                    assert session.last_server_ms <= (
                        session.last_round_trip_ms + 1e-6
                    )

    def test_access_log_writes_one_json_line_per_request(self, tmp_path):
        path = str(tmp_path / "logged.db")
        log_path = tmp_path / "access.log"
        with CrimsonStore.open(path) as store:
            store.trees.store_tree(sample_tree(), f=2)
            server = CrimsonServer(store, port=0, access_log=str(log_path))
            with server:
                host, port = server.address
                with RemoteSession(host, port) as session:
                    session.query(
                        QueryRequest.lca("fig1-sample", "Lla", "Syn")
                    )
                    with pytest.raises(QueryError):
                        session.query(
                            QueryRequest.lca("fig1-sample", "Lla", "nope")
                        )
                    session.ping()
        lines = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
            if line
        ]
        assert [entry["verb"] for entry in lines] == [
            "query", "query", "ping"
        ]
        ok, failed, pinged = lines
        assert ok["outcome"] == "ok" and ok["duration_ms"] > 0.0
        assert ok["session_key"].startswith("127.0.0.1:")
        assert "engine" in ok["phases"] and "write" in ok["phases"]
        assert ok["annotations"]["operation"] == "lca"
        assert failed["outcome"] == "error"
        assert failed["error_kind"] == "QueryError"
        assert pinged["verb"] == "ping"

    def test_error_kinds_are_counted_by_name(self, tmp_path):
        path = str(tmp_path / "errs.db")
        with CrimsonStore.open(path) as store:
            store.trees.store_tree(sample_tree(), f=2)
            with CrimsonServer(store, port=0) as server:
                host, port = server.address
                with RemoteSession(host, port) as session:
                    with pytest.raises(QueryError):
                        session.query(
                            QueryRequest.lca("fig1-sample", "Lla", "nope")
                        )
                    snapshot = session.stats()
        assert snapshot.counters["server.errors.QueryError"] == 1
