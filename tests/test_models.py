"""Unit tests for substitution models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation.models import (
    ALPHABET,
    SubstitutionModel,
    f81,
    gtr,
    hky85,
    jc69,
    k80,
    state_indices,
    states_to_string,
)

ALL_MODELS = [
    jc69(),
    k80(2.0),
    k80(5.0),
    f81((0.4, 0.3, 0.2, 0.1)),
    hky85(3.0, (0.35, 0.15, 0.2, 0.3)),
    gtr((1.0, 2.0, 0.5, 0.8, 3.0, 1.2), (0.25, 0.3, 0.25, 0.2)),
]


class TestEncoding:
    def test_roundtrip(self):
        assert states_to_string(state_indices("ACGTGCA")) == "ACGTGCA"

    def test_invalid_symbol(self):
        with pytest.raises(SimulationError):
            state_indices("ACGX")

    def test_alphabet(self):
        assert ALPHABET == "ACGT"


class TestModelValidity:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_rows_of_q_sum_to_zero(self, model):
        assert np.allclose(model.q.sum(axis=1), 0.0, atol=1e-12)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_unit_substitution_rate(self, model):
        rate = -(model.frequencies * np.diag(model.q)).sum()
        assert rate == pytest.approx(1.0)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    @pytest.mark.parametrize("t", [0.0, 0.01, 0.5, 2.0, 10.0])
    def test_transition_matrix_is_stochastic(self, model, t):
        matrix = model.transition_matrix(t)
        assert np.all(matrix >= 0)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_identity_at_zero(self, model):
        assert np.allclose(model.transition_matrix(0.0), np.eye(4), atol=1e-12)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_stationarity(self, model):
        matrix = model.transition_matrix(1.3)
        assert np.allclose(model.frequencies @ matrix, model.frequencies)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_chapman_kolmogorov(self, model):
        """P(s+t) = P(s) P(t) — the defining semigroup property."""
        first = model.transition_matrix(0.3)
        second = model.transition_matrix(0.7)
        combined = model.transition_matrix(1.0)
        assert np.allclose(first @ second, combined, atol=1e-10)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_detailed_balance(self, model):
        """Reversibility: π_i P_ij(t) = π_j P_ji(t)."""
        matrix = model.transition_matrix(0.8)
        flux = model.frequencies[:, np.newaxis] * matrix
        assert np.allclose(flux, flux.T, atol=1e-10)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_long_time_limit_is_stationary(self, model):
        matrix = model.transition_matrix(500.0)
        for row in matrix:
            assert np.allclose(row, model.frequencies, atol=1e-6)

    def test_negative_time_raises(self):
        with pytest.raises(SimulationError):
            jc69().transition_matrix(-0.1)


class TestJc69ClosedForm:
    def test_matches_analytic_formula(self):
        model = jc69()
        t = 0.42
        matrix = model.transition_matrix(t)
        same = 0.25 + 0.75 * np.exp(-4.0 * t / 3.0)
        diff = 0.25 - 0.25 * np.exp(-4.0 * t / 3.0)
        expected = np.full((4, 4), diff)
        np.fill_diagonal(expected, same)
        assert np.allclose(matrix, expected, atol=1e-12)


class TestK80Structure:
    def test_transitions_exceed_transversions(self):
        matrix = k80(5.0).transition_matrix(0.3)
        # A->G (transition) must be more likely than A->C (transversion).
        assert matrix[0, 2] > matrix[0, 1]
        # C->T transition likewise.
        assert matrix[1, 3] > matrix[1, 0]

    def test_kappa_one_equals_jc(self):
        assert np.allclose(
            k80(1.0).transition_matrix(0.5),
            jc69().transition_matrix(0.5),
            atol=1e-12,
        )


class TestParameterValidation:
    def test_bad_frequencies_rejected(self):
        with pytest.raises(SimulationError):
            f81((0.5, 0.5, 0.2, 0.2))  # sums to 1.4
        with pytest.raises(SimulationError):
            f81((1.0, 0.0, 0.0, 0.0))  # zero entries

    def test_bad_kappa_rejected(self):
        with pytest.raises(SimulationError):
            k80(0.0)
        with pytest.raises(SimulationError):
            hky85(-1.0)

    def test_bad_rates_rejected(self):
        with pytest.raises(SimulationError):
            SubstitutionModel((1, 1, 1, 1, 1, 0), (0.25, 0.25, 0.25, 0.25))

    def test_stationary_sample_distribution(self):
        model = f81((0.7, 0.1, 0.1, 0.1))
        rng = np.random.default_rng(0)
        draw = model.stationary_sample(20000, rng)
        assert (draw == 0).mean() == pytest.approx(0.7, abs=0.02)
