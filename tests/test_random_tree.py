"""Unit tests for the random-topology strawman."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReconstructionError
from repro.reconstruction.random_tree import random_topology
from repro.trees.tree import validate_tree


class TestRandomTopology:
    def test_leafset(self, rng):
        names = [f"t{i}" for i in range(10)]
        tree = random_topology(names, rng)
        assert set(tree.leaf_names()) == set(names)

    def test_binary(self, rng):
        tree = random_topology([f"t{i}" for i in range(15)], rng)
        for node in tree.preorder():
            assert node.is_leaf or len(node.children) == 2

    def test_valid_structure(self, rng):
        validate_tree(random_topology(["a", "b", "c", "d"], rng))

    def test_two_taxa(self, rng):
        tree = random_topology(["a", "b"], rng)
        assert tree.size() == 3

    def test_too_few_raises(self, rng):
        with pytest.raises(ReconstructionError):
            random_topology(["a"], rng)

    def test_duplicates_raise(self, rng):
        with pytest.raises(ReconstructionError):
            random_topology(["a", "a"], rng)

    def test_varies_across_draws(self):
        rng = np.random.default_rng(1)
        names = [f"t{i}" for i in range(8)]
        shapes = {
            random_topology(names, rng).topology_key() for _ in range(20)
        }
        assert len(shapes) > 1

    def test_reproducible(self):
        names = [f"t{i}" for i in range(8)]
        first = random_topology(names, np.random.default_rng(3))
        second = random_topology(names, np.random.default_rng(3))
        assert first.to_newick() == second.to_newick()
