"""crimson-lint self-tests: the repo is clean, seeded violations are not.

The fixture trees under ``tests/fixtures/lint/`` are minimal
``repro``-shaped packages, each violating one rule family on purpose
(see the README there).  The acceptance bar from ISSUE 6: the linter
exits 0 on the real package and non-zero on every fixture, and the
protocol-exhaustiveness rule names every surface the unwired
``frontier`` operation is missing from.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import ALL_RULES, default_root, lint_project, main
from repro.lint.framework import Module, Project, run_rules
from repro.lint.rules_concurrency import (
    LockOrder,
    ReaderEscape,
    SameThreadGuard,
)
from repro.lint.rules_errors import (
    RegistrySync,
    SwallowedExceptions,
    TypedRaises,
)
from repro.lint.rules_layering import (
    NoCliImports,
    ReadOnlyImports,
    SqliteLayering,
)
from repro.lint.rules_protocol import ProtocolExhaustiveness
from repro.lint.rules_resources import ManagedResources
from repro.lint.rules_sql import (
    SqlInterpolation,
    SqlPlaceholders,
    SqlSchema,
    SqlSchemaSync,
    build_census,
    sql_sites,
)
from repro.lint.rules_wire import (
    WireErrorDetails,
    WireFieldDrift,
    WireRoundtrip,
)

FIXTURES = Path(__file__).parent / "fixtures" / "lint"

LAYERING = (SqliteLayering(), ReadOnlyImports(), NoCliImports())
ERRORS = (TypedRaises(), SwallowedExceptions(), RegistrySync())
CONCURRENCY = (ReaderEscape(), LockOrder(), SameThreadGuard())
SQL = (SqlSchema(), SqlPlaceholders(), SqlInterpolation(), SqlSchemaSync())
WIRE = (WireFieldDrift(), WireRoundtrip(), WireErrorDetails())


def lint_fixture(name: str, rules):
    project, findings = lint_project(FIXTURES / name, rules)
    assert not project.broken, project.broken
    return findings


class TestRepoIsClean:
    def test_the_real_package_has_no_findings(self):
        project, findings = lint_project(default_root())
        assert not findings, "\n".join(f.render() for f in findings)
        # Sanity: this really was the repro package, fully loaded.
        assert "storage/database.py" in project.modules
        assert len(project.modules) > 50

    def test_default_root_is_the_repro_package(self):
        import repro

        assert default_root() == Path(repro.__file__).resolve().parent

    def test_rule_ids_are_unique_and_kebab_case(self):
        ids = [rule.rule_id for rule in ALL_RULES]
        assert len(ids) == len(set(ids))
        for rule_id in ids:
            assert rule_id == rule_id.lower() and " " not in rule_id
        assert len(ids) == 18


class TestLayeringRules:
    def test_seeded_violations_are_found(self):
        findings = lint_fixture("layering_bad", LAYERING)
        by_rule = {}
        for finding in findings:
            by_rule.setdefault(finding.rule, []).append(finding)
        sqlite = by_rule.pop("layering-sqlite3")
        assert {(f.path, f.line) for f in sqlite} == {
            ("storage/engine.py", 1),
            ("storage/engine.py", 6),
            ("server/handler.py", 1),
        }
        read_only = by_rule.pop("layering-read-only")
        assert [(f.path, f.line) for f in read_only] == [
            ("analytics/stats.py", 1)
        ]
        no_cli = by_rule.pop("layering-no-cli")
        assert [(f.path, f.line) for f in no_cli] == [("trees/helpers.py", 1)]
        assert not by_rule

    def test_database_module_itself_is_exempt(self):
        project = Project(FIXTURES / "layering_bad")
        module = Module("storage/database.py", "import sqlite3\n")
        project.modules[module.path] = module
        assert run_rules(project, (SqliteLayering(),)) == []


class TestErrorRules:
    def test_seeded_violations_are_found(self):
        findings = lint_fixture("errors_bad", ERRORS)
        rules = sorted(f.rule for f in findings)
        assert rules == [
            "errors-no-swallow",
            "errors-registry",
            "errors-registry",
            "errors-registry",
            "errors-registry",
            "errors-typed-raise",
        ]
        typed = next(f for f in findings if f.rule == "errors-typed-raise")
        assert typed.path == "server/views.py" and "ValueError" in typed.message
        registry_messages = " | ".join(
            f.message for f in findings if f.rule == "errors-registry"
        )
        assert "'QueryError'" in registry_messages  # missing from wire
        assert "'ResourceError'" in registry_messages  # PR 7 kind, missing
        assert "'ParseError'" in registry_messages  # unknown to errors.py
        assert "'AnalyticsError'" in registry_messages  # defined elsewhere

    def test_real_package_raise_and_registry_shapes_pass(self):
        project, findings = lint_project(default_root(), ERRORS)
        assert not findings, "\n".join(f.render() for f in findings)


class TestProtocolExhaustiveness:
    def test_unwired_operation_is_flagged_on_every_surface_by_name(self):
        findings = lint_fixture(
            "protocol_unwired", (ProtocolExhaustiveness(),)
        )
        frontier = [f for f in findings if "'frontier'" in f.message]
        assert {f.path for f in frontier} == {
            "storage/api.py", "storage/store.py", "cli/main.py"
        }
        messages = " | ".join(f.message for f in frontier)
        assert "no QueryRequest constructor" in messages
        assert "no branch in CrimsonStore._execute" in messages
        assert "no CLI subcommand 'frontier'" in messages

    def test_half_wired_estimate_verb_is_flagged_by_name(self):
        # ``estimate`` is in the session protocol, VERBS, the server
        # dispatch, and LocalSession — but RemoteSession and the CLI
        # were forgotten.  Exactly those two surfaces must be named.
        findings = lint_fixture(
            "protocol_unwired", (ProtocolExhaustiveness(),)
        )
        estimate = [f for f in findings if "'estimate'" in f.message]
        assert {f.path for f in estimate} == {
            "server/client.py", "cli/main.py"
        }
        messages = " | ".join(f.message for f in estimate)
        assert "never sent by RemoteSession" in messages
        assert "does not implement session method 'estimate'" in messages
        assert "no CLI subcommand 'estimate'" in messages
        # And nothing else is flagged: the two seeded gaps are the lot.
        assert len(findings) == len(frontier := [
            f for f in findings if "'frontier'" in f.message
        ]) + len(estimate), "\n".join(f.render() for f in findings)
        assert len(frontier) == 3 and len(estimate) == 3

    def test_half_wired_stats_verb_is_flagged_by_name(self):
        # The observability PR's failure mode: ``stats`` in the session
        # protocol, VERBS, the server dispatch, and LocalSession — but
        # no RemoteSession method and no CLI subcommand.  Exactly those
        # surfaces must be named, and nothing else.
        findings = lint_fixture("stats_unwired", (ProtocolExhaustiveness(),))
        assert {f.path for f in findings} == {
            "server/client.py", "cli/main.py"
        }
        messages = " | ".join(f.message for f in findings)
        assert "wire verb 'stats' is never sent by RemoteSession" in messages
        assert "does not implement session method 'stats'" in messages
        assert "session verb 'stats' has no CLI subcommand 'stats'" in messages
        assert len(findings) == 3, "\n".join(f.render() for f in findings)

    def test_half_wired_health_verb_is_flagged_by_name(self):
        # The monitoring PR's failure mode: ``health`` declared in the
        # session protocol, VERBS, and LocalSession — but no server
        # dispatch branch, no RemoteSession method, and no CLI
        # subcommand.  Every missing surface must be named, and
        # nothing else (``stats`` is fully wired here).
        findings = lint_fixture("health_unwired", (ProtocolExhaustiveness(),))
        assert {f.path for f in findings} == {
            "server/server.py", "server/client.py", "cli/main.py"
        }
        messages = " | ".join(f.message for f in findings)
        assert (
            "wire verb 'health' has no branch in CrimsonServer.dispatch"
            in messages
        )
        assert "wire verb 'health' is never sent by RemoteSession" in messages
        assert "does not implement session method 'health'" in messages
        assert (
            "session verb 'health' has no CLI subcommand 'health'" in messages
        )
        assert len(findings) == 4, "\n".join(f.render() for f in findings)

    def test_missing_surface_file_is_reported(self, tmp_path):
        (tmp_path / "storage").mkdir()
        (tmp_path / "storage" / "api.py").write_text("OPERATIONS = ()\n")
        _, findings = lint_project(tmp_path, (ProtocolExhaustiveness(),))
        missing = {f.path for f in findings}
        assert "server/protocol.py" in missing
        assert "cli/main.py" in missing


class TestConcurrencyRules:
    def test_seeded_violations_are_found(self):
        findings = lint_fixture("concurrency_bad", CONCURRENCY)
        rules = sorted(f.rule for f in findings)
        assert rules == [
            "concurrency-lock-order",
            "concurrency-lock-order",
            "concurrency-reader-escape",
            "concurrency-same-thread",
        ]
        lock_order = [f for f in findings if f.rule == "concurrency-lock-order"]
        messages = " | ".join(f.message for f in lock_order)
        assert "Deadlocker" in messages and "'_a', '_b'" in messages
        assert "Reacquire" in messages and "'_guard'" in messages
        escape = next(
            f for f in findings if f.rule == "concurrency-reader-escape"
        )
        assert escape.path == "storage/registry.py"

    def test_reentrant_and_ordered_locks_pass(self):
        source = (
            "import threading\n"
            "\n"
            "\n"
            "class Ordered:\n"
            "    def __init__(self):\n"
            "        self._outer = threading.Lock()\n"
            "        self._inner = threading.Lock()\n"
            "        self._rlock = threading.RLock()\n"
            "\n"
            "    def work(self):\n"
            "        with self._outer:\n"
            "            with self._inner:\n"
            "                pass\n"
            "\n"
            "    def nested_reentrant(self):\n"
            "        with self._rlock:\n"
            "            self.helper()\n"
            "\n"
            "    def helper(self):\n"
            "        with self._rlock:\n"
            "            pass\n"
        )
        project = Project(Path("."))
        project.modules["storage/ok.py"] = Module("storage/ok.py", source)
        assert run_rules(project, (LockOrder(),)) == []


class TestResourceRule:
    def test_unmanaged_calls_are_found_and_managed_shapes_pass(self):
        findings = lint_fixture("resources_bad", (ManagedResources(),))
        assert [(f.path, f.line) for f in findings] == [
            ("storage/raw.py", 6),
            ("storage/raw.py", 11),
        ]


class TestSuppressions:
    def test_allow_comment_silences_the_named_rules(self):
        findings = lint_fixture(
            "suppressed", (SqliteLayering(), ManagedResources())
        )
        assert findings == []

    def test_allow_comment_parses_comma_separated_ids(self):
        module = Module(
            "storage/x.py",
            "import sqlite3  # crimson: allow[rule-a, rule-b] because\n",
        )
        assert module.allows(1, "rule-a")
        assert module.allows(1, "rule-b")
        assert not module.allows(1, "rule-c")
        assert not module.allows(2, "rule-a")

    def test_suppression_does_not_leak_to_other_lines(self):
        findings = lint_fixture("layering_bad", (SqliteLayering(),))
        assert findings  # same violation, no allow comment -> reported


class TestRunnerAndOutput:
    def test_unparseable_file_is_a_parse_finding(self, tmp_path):
        (tmp_path / "broken.py").write_text("def (\n")
        # No rules: only the parse pseudo-findings can appear.
        project, findings = lint_project(tmp_path, ())
        assert [f.rule for f in findings] == ["parse"]
        assert findings[0].path == "broken.py"
        # And a full run still reports it alongside the rule findings.
        _, full = lint_project(tmp_path)
        assert "parse" in {f.rule for f in full}

    def test_main_exits_nonzero_on_fixture_and_emits_json(self, capsys):
        code = main(
            [
                "--root",
                str(FIXTURES / "layering_bad"),
                "--format",
                "json",
                "--rules",
                "layering-sqlite3",
            ]
        )
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["rules"] == ["layering-sqlite3"]
        assert {f["rule"] for f in report["findings"]} == {"layering-sqlite3"}
        assert all(f["line"] >= 1 for f in report["findings"])

    def test_main_exits_zero_on_the_real_package(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "no problems" in out

    def test_main_rejects_unknown_rule_ids(self, capsys):
        with pytest.raises(SystemExit):
            main(["--rules", "no-such-rule"])

    def test_list_rules_prints_all_ids(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.rule_id in out

    def test_python_dash_m_entry_point(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--list-rules"],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0
        assert "layering-sqlite3" in result.stdout


class TestCliIntegration:
    def test_crimson_lint_subcommand(self, capsys):
        from repro.cli.main import main as crimson

        assert crimson(["lint"]) == 0
        assert "no problems" in capsys.readouterr().out
        assert (
            crimson(
                ["lint", "--root", str(FIXTURES / "errors_bad"), "--format",
                 "json"]
            )
            == 1
        )
        report = json.loads(capsys.readouterr().out)
        assert report["findings"]

    def test_crimson_lint_never_creates_a_database(self, tmp_path, capsys):
        from repro.cli.main import main as crimson

        db = tmp_path / "untouched.db"
        assert crimson(["--db", str(db), "lint"]) == 0
        capsys.readouterr()
        assert not db.exists()
