"""Tracing, time-series history, and health monitoring tests.

The guarantees from ISSUE 10, checked here rather than inferred:

* one trace id observably joins the client's ``last_trace``, the
  server's access-log line, and the slow-query-log entry for the same
  request over a real TCP round trip;
* the windowed history sampler derives rates from counter deltas in
  bounded rings, costs nothing when disabled, and never executes SQL —
  a warm ``lca`` / ``consensus`` under ``statement_budget(0)`` with
  tracing and sampling active still runs zero statements;
* the health evaluator maps windowed values onto declarative
  thresholds, prefers fresh windows over lifetime totals, and drain
  overrides everything;
* ``render_prometheus`` survives a strict text-format parser: legal
  names, exactly one ``# TYPE`` per metric, declared before samples;
* ``last_wire_overhead_ms`` clamps clock skew to zero and is populated
  on the error-reply path too.
"""

from __future__ import annotations

import io
import json
import re
import time

import pytest

from repro.cli.top import render_dashboard, run_top, sparkline

from repro.errors import ProtocolError, QueryError, ResourceError
from repro.obs import (
    MetricsRegistry,
    SlowQueryLog,
    Span,
    TimeSeries,
    evaluate_health,
    new_trace_id,
    render_health,
    render_prometheus,
)
from repro.obs.health import HealthThresholds
from repro.obs.timeseries import MAX_SERIES
from repro.server import CrimsonServer, RemoteSession, protocol
from repro.storage import wire
from repro.storage.api import (
    AnalyticsRequest,
    HealthReport,
    QueryRequest,
    StatsRequest,
)
from repro.storage.sanitize import statement_budget
from repro.storage.store import CrimsonStore
from repro.trees.build import sample_tree


class TestTraceIds:
    def test_ids_are_hex_and_distinct(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        for trace_id in ids:
            assert re.fullmatch(r"[0-9a-f]{16}", trace_id)

    def test_trace_of_accepts_only_sane_strings(self):
        assert protocol.trace_of({"trace": "abc123"}) == "abc123"
        assert protocol.trace_of({}) is None
        assert protocol.trace_of({"trace": ""}) is None
        assert protocol.trace_of({"trace": 42}) is None
        assert protocol.trace_of({"trace": "x" * 65}) is None
        assert protocol.trace_of({"trace": "x" * 64}) == "x" * 64
        assert protocol.trace_of({"trace": "bad\nid"}) is None

    def test_request_envelope_carries_and_omits_the_trace(self):
        stamped = protocol.request_envelope("ping", None, trace="tid1")
        assert stamped["trace"] == "tid1"
        bare = protocol.request_envelope("ping", None)
        assert "trace" not in bare

    def test_slow_log_mints_ids_for_local_spans(self):
        log = SlowQueryLog(capacity=4, threshold_ms=0.0)
        span = Span("query")
        span.finish()
        assert span.trace_id is None
        assert log.observe(span)
        entry = log.entries()[0]
        assert re.fullmatch(r"[0-9a-f]{16}", entry["trace_id"])
        # A span that already carries a wire trace id keeps it.
        traced = Span("query", trace_id="feedfacefeedface")
        traced.finish()
        log.observe(traced)
        assert log.entries()[-1]["trace_id"] == "feedfacefeedface"


class TestTimeSeries:
    @staticmethod
    def _registry(requests: int = 0, errors: int = 0) -> MetricsRegistry:
        registry = MetricsRegistry()
        if requests:
            registry.counter("store.query.requests").inc(requests)
        if errors:
            registry.counter("store.query.errors").inc(errors)
        return registry

    def test_first_sample_only_establishes_the_baseline(self):
        series = TimeSeries(self._registry(10), windows=((1.0, 8),))
        series.sample(now=100.0)
        history = series.history()
        assert history["enabled"] is True
        assert history["windows"][0]["samples"] == 0

    def test_rates_derive_from_counter_deltas(self):
        registry = self._registry()
        series = TimeSeries(registry, windows=((1.0, 8),))
        series.sample(now=100.0)
        registry.counter("store.query.requests").inc(20)
        registry.counter("store.query.errors").inc(2)
        registry.counter("store.statements").inc(40)
        series.sample(now=102.0)  # 2s elapsed
        window = series.history()["windows"][0]
        assert window["samples"] == 1
        assert window["series"]["qps"] == [10.0]
        assert window["series"]["error_rate"] == [0.1]
        assert window["series"]["statements_per_s"] == [20.0]
        assert series.latest()["qps"] == 10.0

    def test_window_only_rolls_when_its_interval_elapsed(self):
        registry = self._registry()
        series = TimeSeries(registry, windows=((1.0, 8), (10.0, 8)))
        series.sample(now=0.0)
        registry.counter("store.query.requests").inc(5)
        series.sample(now=1.5)
        windows = {
            w["interval_s"]: w for w in series.history()["windows"]
        }
        assert windows[1.0]["samples"] == 1
        assert windows[10.0]["samples"] == 0  # interval not yet elapsed
        series.sample(now=11.0)
        windows = {
            w["interval_s"]: w for w in series.history()["windows"]
        }
        assert windows[10.0]["samples"] == 1

    def test_ring_is_bounded_and_oldest_first(self):
        registry = self._registry()
        series = TimeSeries(registry, windows=((1.0, 3),))
        series.sample(now=0.0)
        for tick in range(1, 6):
            registry.counter("store.query.requests").inc(tick)
            series.sample(now=float(tick))
        window = series.history()["windows"][0]
        assert window["slots"] == 3
        assert window["samples"] == 3  # capped, not 5
        # Oldest of the retained samples first: deltas 3, 4, 5.
        assert window["series"]["qps"] == [3.0, 4.0, 5.0]

    def test_per_verb_series_from_histogram_bucket_deltas(self):
        registry = MetricsRegistry()
        registry.counter("server.requests").inc()
        series = TimeSeries(registry, windows=((1.0, 8),))
        series.sample(now=0.0)
        registry.histogram("server.latency.query").record(0.002)
        registry.histogram("server.latency.query").record(0.002)
        registry.counter("server.requests").inc(2)
        series.sample(now=2.0)
        values = series.latest()
        assert values["qps.query"] == 1.0
        assert values["p99_ms.query"] > 0.0
        assert values["qps"] == 1.0

    def test_disabled_timeseries_records_nothing(self):
        registry = self._registry(5)
        series = TimeSeries(registry, windows=((1.0, 8),), enabled=False)
        series.sample(now=0.0)
        registry.counter("store.query.requests").inc(50)
        series.sample(now=10.0)
        history = series.history()
        assert history["enabled"] is False
        assert history["windows"][0]["samples"] == 0
        assert series.latest() == {}

    def test_series_count_is_capped(self):
        registry = MetricsRegistry()
        registry.counter("server.requests").inc()
        series = TimeSeries(registry, windows=((1.0, 4),))
        series.sample(now=0.0)
        for index in range(MAX_SERIES + 20):
            registry.histogram(f"server.latency.v{index}").record(0.001)
        series.sample(now=1.5)
        window = series.history()["windows"][0]
        assert len(window["series"]) <= MAX_SERIES


class TestHealthEvaluator:
    @staticmethod
    def _history(**latest: float) -> dict:
        return {
            "enabled": True,
            "windows": [{
                "interval_s": 1.0,
                "slots": 8,
                "samples": 1,
                "series": {name: [value] for name, value in latest.items()},
            }],
        }

    def test_quiet_store_is_ok(self):
        verdict = evaluate_health(
            history={"enabled": True, "windows": []},
            counters={},
            histograms={},
            admission={},
        )
        assert verdict["status"] == "ok"
        assert [c["name"] for c in verdict["checks"]] == [
            "error_rate", "p99_ms", "queue_depth", "inflight_fraction"
        ]
        assert all(c["status"] == "ok" for c in verdict["checks"])

    def test_windowed_error_rate_trips_degraded_then_unhealthy(self):
        for rate, expected in ((0.005, "ok"), (0.05, "degraded"),
                               (0.5, "unhealthy")):
            verdict = evaluate_health(
                history=self._history(error_rate=rate),
                counters={}, histograms={}, admission={},
            )
            assert verdict["status"] == expected, rate

    def test_windowed_values_beat_cumulative_totals(self):
        # Lifetime counters say 100% errors; the fresh window says the
        # incident is over.  Health must listen to the window.
        verdict = evaluate_health(
            history=self._history(error_rate=0.0),
            counters={
                "store.query.requests": 10, "store.query.errors": 10,
            },
            histograms={}, admission={},
        )
        assert verdict["status"] == "ok"

    def test_cumulative_fallback_before_any_window_rolls(self):
        verdict = evaluate_health(
            history={"enabled": True, "windows": []},
            counters={
                "store.query.requests": 10, "store.query.errors": 10,
            },
            histograms={}, admission={},
        )
        assert verdict["status"] == "unhealthy"

    def test_worst_check_wins(self):
        verdict = evaluate_health(
            history=self._history(**{
                "error_rate": 0.05,          # degraded
                "p99_ms.query": 5000.0,      # unhealthy
            }),
            counters={}, histograms={}, admission={},
        )
        assert verdict["status"] == "unhealthy"
        by_name = {c["name"]: c for c in verdict["checks"]}
        assert by_name["error_rate"]["status"] == "degraded"
        assert by_name["p99_ms"]["status"] == "unhealthy"

    def test_queue_depth_and_inflight_fraction(self):
        verdict = evaluate_health(
            history={"enabled": True, "windows": []},
            counters={}, histograms={},
            admission={"waiting": 20},
            inflight=9.0, capacity=10,
        )
        by_name = {c["name"]: c for c in verdict["checks"]}
        assert by_name["queue_depth"]["status"] == "unhealthy"
        assert by_name["inflight_fraction"]["status"] == "degraded"
        assert by_name["inflight_fraction"]["value"] == 0.9

    def test_draining_overrides_everything(self):
        verdict = evaluate_health(
            history={"enabled": True, "windows": []},
            counters={}, histograms={}, admission={},
            draining=True,
        )
        assert verdict["status"] == "draining"
        assert verdict["draining"] is True

    def test_custom_thresholds_are_honoured(self):
        strict = HealthThresholds(
            error_rate_degraded=0.001, error_rate_unhealthy=0.002
        )
        verdict = evaluate_health(
            history=self._history(error_rate=0.0015),
            counters={}, histograms={}, admission={},
            thresholds=strict,
        )
        assert verdict["status"] == "degraded"
        assert "error_rate_degraded" in strict.as_dict()


class TestHealthWire:
    def _report(self) -> HealthReport:
        with CrimsonStore.open() as store:
            return store.session().health()

    def test_report_roundtrips_through_json(self):
        report = self._report()
        payload = json.loads(json.dumps(wire.encode_health(report)))
        decoded = wire.decode_health(payload)
        assert decoded.status == report.status
        assert decoded.ok is report.ok
        assert decoded.draining is report.draining
        assert [dict(c) for c in decoded.checks] == [
            dict(c) for c in report.checks
        ]
        assert decoded.service == dict(report.service)

    def test_malformed_payload_raises_protocol_error(self):
        with pytest.raises(ProtocolError, match="health"):
            wire.decode_health({"protocol": wire.PROTOCOL_VERSION})

    def test_render_health_lists_every_check(self):
        text = render_health(self._report().as_dict())
        assert text.startswith("status: ok")
        for name in ("error_rate", "p99_ms", "queue_depth",
                     "inflight_fraction"):
            assert name in text


# Prometheus text-format (0.0.4) constraints: a metric name matches
# ``[a-zA-Z_:][a-zA-Z0-9_:]*``, carries at most one ``# TYPE`` line,
# and that line precedes every sample of the metric.
_METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? (?P<value>\S+)$"
)


def parse_prometheus_strict(text: str) -> dict:
    """Parse an exposition strictly; raise AssertionError on violations."""
    types: dict = {}
    samples: dict = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(" ")
            assert parts[:2] == ["#", "TYPE"], f"unknown comment: {line!r}"
            assert len(parts) == 4, f"malformed TYPE line: {line!r}"
            _, _, name, kind = parts
            assert _METRIC_NAME.match(name), f"illegal name {name!r}"
            assert kind in ("counter", "gauge", "summary", "histogram")
            assert name not in types, f"duplicate TYPE for {name!r}"
            types[name] = kind
            continue
        match = _SAMPLE.match(line)
        assert match, f"malformed sample: {line!r}"
        name = match.group("name")
        base = name
        for suffix in ("_count", "_sum"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                base = name[: -len(suffix)]
        assert base in types, f"sample {name!r} has no preceding TYPE"
        if base == name and types[base] != "summary":
            assert name not in samples or match.group("labels"), (
                f"duplicate unlabelled sample {name!r}"
            )
        float(match.group("value"))
        samples.setdefault(name, []).append(match.group("value"))
    return {"types": types, "samples": samples}


class TestPrometheusStrict:
    def test_live_snapshot_passes_the_strict_parser(self):
        with CrimsonStore.open() as store:
            store.trees.store_tree(sample_tree(), f=2)
            store.query(QueryRequest.lca("fig1-sample", "Lla", "Syn"))
            store.timeseries.sample(now=0.0)
            store.query(QueryRequest.clade("fig1-sample", "A"))
            store.timeseries.sample(now=2.0)
            snapshot = store.stats().as_dict()
        parsed = parse_prometheus_strict(render_prometheus(snapshot))
        assert parsed["types"]["crimson_store_query_requests"] == "counter"
        assert parsed["types"]["crimson_store_query_lca"] == "summary"
        assert "crimson_store_query_lca_count" in parsed["samples"]
        # History made it out as gauges, window label sanitized.
        history_gauges = [
            name for name, kind in parsed["types"].items()
            if name.startswith("crimson_history_") and kind == "gauge"
        ]
        assert any("qps" in name for name in history_gauges)

    def test_colliding_sanitized_names_emit_one_type_line(self):
        snapshot = {
            "counters": {"a.b": 1, "a_b": 2},
            "histograms": {"c": {"count": 1, "p50_ms": 1.0}},
            "caches": {"c_count": 9},
        }
        text = render_prometheus(snapshot)
        parse_prometheus_strict(text)
        assert text.count("# TYPE crimson_a_b ") == 1
        # The summary owns `crimson_c_count`; the cache gauge that
        # sanitizes onto it must not redeclare the name.
        assert "# TYPE crimson_c_count" not in text


class TestWireOverheadClamp:
    def test_clock_skew_clamps_to_zero(self):
        session = RemoteSession.__new__(RemoteSession)
        session.last_round_trip_ms = 1.0
        session.last_server_ms = 1.4  # server clock ahead of the client
        assert session.last_wire_overhead_ms == 0.0
        session.last_server_ms = 0.25
        assert session.last_wire_overhead_ms == 0.75
        session.last_server_ms = None
        assert session.last_wire_overhead_ms is None


def _wait_for(condition, timeout_s: float = 2.0):
    """Poll until ``condition()`` is truthy (the server writes its
    access-log and slow-log records *after* replying, so a client-side
    read can race the observer by a few microseconds)."""
    deadline = time.monotonic() + timeout_s
    while True:
        value = condition()
        if value or time.monotonic() >= deadline:
            return value
        time.sleep(0.005)


@pytest.fixture
def traced_server(tmp_path):
    """A live server with a threshold-0 slow log and an access log."""
    path = str(tmp_path / "traced.db")
    log_path = tmp_path / "access.log"
    with CrimsonStore.open(path) as store:
        store.trees.store_tree(sample_tree(), f=2)
        store.slow_log = SlowQueryLog(threshold_ms=0.0)
        server = CrimsonServer(store, port=0, access_log=str(log_path))
        with server:
            host, port = server.address
            yield store, host, port, log_path


class TestTraceDifferential:
    def test_one_trace_id_joins_client_access_log_and_slow_log(
        self, traced_server
    ):
        store, host, port, log_path = traced_server
        with RemoteSession(host, port) as session:
            assert session.last_trace_id is None
            session.query(QueryRequest.lca("fig1-sample", "Lla", "Syn"))
            trace_id = session.last_trace_id
            trace = session.last_trace
        assert trace_id is not None
        assert trace["trace_id"] == trace_id
        assert trace["verb"] == "query"
        assert trace["outcome"] == "ok"
        assert set(trace["phases"]) == {"write", "read"}
        assert trace["wire_overhead_ms"] >= 0.0
        # The slow log (threshold 0) retained the same id...
        slow_ids = _wait_for(lambda: [
            entry["trace_id"] for entry in store.slow_log.entries()
        ])
        assert trace_id in slow_ids
        # ...and so did the access-log line for the query.
        access = _wait_for(lambda: [
            json.loads(line)
            for line in log_path.read_text().splitlines() if line
        ])
        query_lines = [e for e in access if e["verb"] == "query"]
        assert [e["trace_id"] for e in query_lines] == [trace_id]

    def test_error_replies_carry_the_trace_and_overhead(
        self, traced_server
    ):
        _, host, port, log_path = traced_server
        with RemoteSession(host, port) as session:
            with pytest.raises(QueryError):
                session.query(
                    QueryRequest.lca("fig1-sample", "Lla", "no-such")
                )
            trace_id = session.last_trace_id
            trace = session.last_trace
            overhead = session.last_wire_overhead_ms
        # The failed round trip still populated the whole decomposition.
        assert trace_id is not None
        assert trace["outcome"] == "error"
        assert trace["server_ms"] is not None
        assert overhead is not None and overhead >= 0.0
        access = _wait_for(lambda: [
            json.loads(line)
            for line in log_path.read_text().splitlines() if line
        ])
        failed = [e for e in access if e["outcome"] == "error"]
        assert [e["trace_id"] for e in failed] == [trace_id]

    def test_each_call_gets_a_fresh_trace_id(self, traced_server):
        _, host, port, _ = traced_server
        with RemoteSession(host, port) as session:
            session.ping()
            first = session.last_trace_id
            session.ping()
            second = session.last_trace_id
        assert first != second

    def test_stats_slow_queries_expose_trace_ids_remotely(
        self, traced_server
    ):
        _, host, port, _ = traced_server
        with RemoteSession(host, port) as session:
            session.query(QueryRequest.lca("fig1-sample", "Lla", "Syn"))
            trace_id = session.last_trace_id
            snapshot = session.stats(
                StatsRequest(sections=("slow_queries",))
            )
        assert trace_id in [
            entry.get("trace_id") for entry in snapshot.slow_queries
        ]


class TestHealthSurfaces:
    def test_local_session_health_is_ok_and_typed(self):
        with CrimsonStore.open() as store:
            report = store.session().health()
        assert isinstance(report, HealthReport)
        assert report.status == "ok" and report.ok
        assert report.service["transport"] == "local"
        assert [c["name"] for c in report.checks] == [
            "error_rate", "p99_ms", "queue_depth", "inflight_fraction"
        ]

    def test_remote_health_matches_local_shape(self, traced_server):
        store, host, port, _ = traced_server
        with RemoteSession(host, port) as session:
            remote = session.health()
        local = store.session().health()
        assert remote.service["transport"] == "tcp"
        assert [c["name"] for c in remote.checks] == [
            c["name"] for c in local.checks
        ]
        assert remote.ok

    def test_health_answers_during_drain_with_draining_status(
        self, tmp_path
    ):
        path = str(tmp_path / "drain.db")
        with CrimsonStore.open(path) as store:
            store.trees.store_tree(sample_tree(), f=2)
            with CrimsonServer(store, port=0) as server:
                host, port = server.address
                with RemoteSession(host, port) as session:
                    session.ping()
                    server.stop_accepting()
                    # Other verbs are refused while draining...
                    with pytest.raises(ResourceError):
                        session.ping()
                    # ...but health still answers, and says so.
                    report = session.health()
                    assert report.status == "draining"
                    assert report.draining and not report.ok

    def test_history_section_rides_the_stats_verb(self, traced_server):
        _, host, port, _ = traced_server
        with RemoteSession(host, port) as session:
            session.query(QueryRequest.lca("fig1-sample", "Lla", "Syn"))
            snapshot = session.stats(StatsRequest(sections=("history",)))
        assert snapshot.history["enabled"] is True
        shapes = {
            (w["interval_s"], w["slots"])
            for w in snapshot.history["windows"]
        }
        assert shapes == {(1.0, 120), (10.0, 360)}
        # Narrowed to history: the heavy sections stayed home.
        assert snapshot.counters == {}
        assert snapshot.histograms == {}

    def test_old_peer_snapshot_without_history_still_decodes(self):
        with CrimsonStore.open() as store:
            payload = wire.encode_stats(store.stats())
        del payload["history"]
        decoded = wire.decode_stats(json.loads(json.dumps(payload)))
        assert decoded.history == {}


class TestTopDashboard:
    _SNAPSHOT = {
        "service": {"transport": "tcp", "trees": 3, "shards": 2},
        "caches": {"row": {"hits": 9, "misses": 1}},
        "slow_queries": [{
            "trace_id": "deadbeefdeadbeef", "verb": "query",
            "duration_ms": 12.5, "detail": "lca gold",
        }],
        "history": {
            "enabled": True,
            "windows": [{
                "interval_s": 1.0, "slots": 8, "samples": 3,
                "series": {
                    "qps": [1.0, 2.0, 4.0],
                    "error_rate": [0.0, 0.0, 0.5],
                    "qps.query": [1.0, 2.0, 4.0],
                    "p99_ms.query": [0.5, 0.7, 0.9],
                },
            }],
        },
    }

    def test_sparkline_scales_to_the_peak(self):
        assert sparkline([0.0, 0.0], width=8) == "▁▁"
        line = sparkline([1.0, 2.0, 4.0], width=8)
        assert len(line) == 3
        assert line[-1] == "█"
        assert line[0] < line[-1]
        assert sparkline([], width=8) == ""
        # Only the last `width` values are drawn.
        assert len(sparkline([1.0] * 50, width=8)) == 8

    def test_dashboard_is_deterministic_and_complete(self):
        frame = render_dashboard(self._SNAPSHOT, title="unit")
        assert frame == render_dashboard(self._SNAPSHOT, title="unit")
        assert "crimson top — unit — transport=tcp trees=3 shards=2" in frame
        assert "qps" in frame and "errors" in frame
        assert "query" in frame  # the per-verb row
        assert "row 90.0%" in frame  # cache hit rate
        assert "deadbeefdeadbeef" in frame  # slow query trace id

    def test_run_top_polls_and_honours_iterations(self):
        polls = []

        class FakeSnapshot:
            def as_dict(self):
                polls.append(1)
                return TestTopDashboard._SNAPSHOT

        out = io.StringIO()
        code = run_top(
            FakeSnapshot, title="t", interval=0.0, iterations=2, out=out
        )
        assert code == 0
        assert len(polls) == 2
        assert out.getvalue().count("crimson top — t") == 2

    def test_empty_snapshot_still_renders_a_header(self):
        frame = render_dashboard({}, title="empty")
        assert frame.startswith("crimson top — empty")


class TestWarmPathWithTracingStaysFree:
    def test_warm_queries_with_sampling_execute_zero_sql(self, sanitized):
        with CrimsonStore.open() as store:
            store.trees.store_tree(sample_tree(), name="a", f=2)
            store.trees.store_tree(sample_tree(), name="b", f=2)
            store.slow_log = SlowQueryLog(threshold_ms=0.0)
            lca = QueryRequest.lca("a", "Lla", "Syn")
            consensus = AnalyticsRequest.consensus("a", "b")
            store.query(lca)  # warm the handles' row caches
            store.analyze(consensus)
            store.timeseries.sample(now=0.0)
            with statement_budget(0) as budget:
                result = store.query(lca)
                outcome = store.analyze(consensus)
                store.timeseries.sample(now=2.0)
            assert budget.spent == 0
            assert result.node is not None
            assert outcome.consensus is not None
            # Sampling really happened: the window derived real rates.
            latest = store.timeseries.latest()
            assert latest["qps"] > 0.0
            # And the slow log traced the warm queries.
            assert all(
                entry["trace_id"] for entry in store.slow_log.entries()
            )
