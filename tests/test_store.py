"""Tests of the `CrimsonStore` façade, reader pool, and typed queries.

Covers the session-API redesign: one store handle owning the writer
connection and a pool of read-only WAL readers, the typed
``QueryRequest``/``QueryResult`` surface, the threaded stress contract
(no ``database is locked``, per-thread results equal to single-threaded
ground truth), and the deprecation shims that keep raw-database
construction alive.
"""

from __future__ import annotations

import threading
import warnings

import pytest

from repro.errors import CrimsonError, QueryError, StorageError
from repro.storage.api import QueryRequest, QueryResult
from repro.storage.cache import LRUCache
from repro.storage.database import CrimsonDatabase
from repro.storage.loader import DataLoader
from repro.storage.pool import ReaderPool
from repro.storage.query_repository import QueryRepository
from repro.storage.species_repository import SpeciesRepository
from repro.storage.store import CrimsonStore
from repro.storage.tree_repository import TreeRepository
from repro.trees.build import caterpillar, sample_tree
from repro.trees.newick import write_newick


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "store.db")


@pytest.fixture
def pooled_store(store_path):
    """A file-backed store with readers, seeded with two trees."""
    with CrimsonStore.open(store_path, readers=4) as store:
        store.load_tree(sample_tree(), name="fig1")
        store.load_tree(caterpillar(60), name="deep")
        yield store


class TestCrimsonStoreBasics:
    def test_open_close_context_manager(self, store_path):
        with CrimsonStore.open(store_path, readers=2) as store:
            assert not store.is_closed
            assert store.pool is not None and store.pool.size == 2
        assert store.is_closed
        assert store.pool.is_closed

    def test_memory_store_has_no_pool(self):
        with CrimsonStore.open(readers=4) as store:
            assert store.pool is None
            store.load_tree(sample_tree(), name="fig1")
            result = store.query(QueryRequest.lca("fig1", "Lla", "Syn"))
            direct = store.open_tree("fig1").lca("Lla", "Syn")
            assert result.node.node_id == direct.node_id

    def test_negative_readers_rejected(self, store_path):
        with pytest.raises(StorageError):
            CrimsonStore.open(store_path, readers=-1)

    def test_namespaces_share_one_writer(self, pooled_store):
        assert pooled_store.trees.db is pooled_store.db
        assert pooled_store.species.db is pooled_store.db
        assert pooled_store.history.db is pooled_store.db
        # The loader reuses the store's repositories, not private copies.
        assert pooled_store.loader.trees is pooled_store.trees
        assert pooled_store.loader.species is pooled_store.species

    def test_load_and_catalogue_roundtrip(self, pooled_store):
        names = [info.name for info in pooled_store.trees.list_trees()]
        assert names == ["deep", "fig1"]

    def test_open_tree_is_cached_per_thread(self, pooled_store):
        first = pooled_store.open_tree("fig1")
        assert pooled_store.open_tree("fig1") is first

    def test_open_tree_explicit_cache_size_is_fresh(self, pooled_store):
        cached = pooled_store.open_tree("fig1")
        fresh = pooled_store.open_tree("fig1", cache_size=16)
        assert fresh is not cached
        assert fresh.engine.cache_size == 16

    def test_open_tree_uses_pooled_reader(self, pooled_store):
        handle = pooled_store.open_tree("fig1")
        assert handle.db is not pooled_store.db
        assert handle.db.read_only

    def test_unknown_tree_raises_storage_error(self, pooled_store):
        with pytest.raises(StorageError):
            pooled_store.open_tree("ghost")

    def test_delete_and_restore_invalidates_cached_handles(self, store_path):
        """Regression: a re-stored name must not serve the old tree."""
        with CrimsonStore.open(store_path, readers=2) as store:
            store.load_newick_text("((a:1,b:1):1,c:2);", name="gold")
            before = store.query(QueryRequest.lca("gold", "a", "b")).node
            assert before.depth == 1  # LCA(a, b) is the inner node
            store.trees.delete_tree("gold")
            store.load_newick_text("(a:1,(b:1,c:1):1);", name="gold")
            after = store.query(QueryRequest.lca("gold", "a", "b")).node
            assert after.depth == 0  # in the new topology it is the root
            assert after.node_id == 0

    def test_verify_all_and_one(self, pooled_store):
        reports = pooled_store.verify()
        assert len(reports) == 2 and all(r.ok for r in reports)
        assert pooled_store.verify("fig1")[0].ok

    def test_loader_report_callback(self, store_path):
        messages = []
        with CrimsonStore.open(store_path, report=messages.append) as store:
            store.load_newick_text("(a:1,b:2);", name="tiny")
        assert any("tiny" in message for message in messages)

    def test_repr(self, pooled_store):
        text = repr(pooled_store)
        assert "readers=4" in text and "open" in text


class TestQueryRequestValidation:
    def test_unknown_operation(self):
        with pytest.raises(QueryError):
            QueryRequest(operation="frontier", tree="t", taxa=("a",))

    def test_missing_tree_name(self):
        with pytest.raises(QueryError):
            QueryRequest(operation="lca", tree="", taxa=("a", "b"))

    def test_lca_needs_taxa(self):
        with pytest.raises(QueryError):
            QueryRequest.lca("t")

    def test_batch_needs_pairs(self):
        with pytest.raises(QueryError):
            QueryRequest.lca_batch("t", [])

    def test_project_rejects_node_ids(self):
        with pytest.raises(QueryError):
            QueryRequest.project("t", 3)  # type: ignore[arg-type]

    def test_match_needs_pattern(self):
        with pytest.raises(QueryError):
            QueryRequest(operation="match", tree="t")

    def test_sequences_normalized_to_tuples(self):
        request = QueryRequest.lca_batch("t", [["a", "b"]])
        assert request.pairs == (("a", "b"),)

    def test_triple_in_pairs_is_query_error(self):
        # Regression: shape problems escaped as ValueError before.
        with pytest.raises(QueryError, match="exactly two taxa"):
            QueryRequest.lca_batch("t", [("a", "b", "c")])

    def test_bare_int_in_pairs_is_query_error(self):
        # Regression: a non-sequence pair escaped as TypeError before.
        with pytest.raises(QueryError, match="must be two taxa"):
            QueryRequest.lca_batch("t", [7])  # type: ignore[list-item]

    def test_string_pair_is_query_error(self):
        # "ab" is length-2 and iterable, but is one taxon, not a pair.
        with pytest.raises(QueryError, match="must be two taxa"):
            QueryRequest.lca_batch("t", ["ab"])  # type: ignore[list-item]

    def test_non_iterable_pairs_is_query_error(self):
        with pytest.raises(QueryError, match="pairs must be a sequence"):
            QueryRequest(operation="lca_batch", tree="t", pairs=3)

    def test_bool_taxon_is_query_error(self):
        # bool is an int subclass; "node True" is never intended.
        with pytest.raises(QueryError, match="species name or pre-order"):
            QueryRequest.lca("t", True, "b")  # type: ignore[arg-type]

    def test_non_taxon_in_pair_is_query_error(self):
        with pytest.raises(QueryError, match="species name or pre-order"):
            QueryRequest.lca_batch("t", [("a", 1.5)])  # type: ignore[list-item]

    def test_empty_lca_summary_is_query_error(self):
        # Regression: summary() indexed nodes[0] and raised IndexError
        # on an empty result; the .node accessor reports it properly.
        result = QueryResult(
            request=QueryRequest.lca("t", "a", "b"), duration_ms=0.0
        )
        with pytest.raises(QueryError, match="0 rows"):
            result.summary()

    def test_params_round_trip(self):
        assert QueryRequest.lca("t", "a", "b").params() == {"taxa": ["a", "b"]}
        assert QueryRequest.match("t", "(a,b);").params() == {
            "pattern": "(a,b);",
            "ordered": True,
        }
        assert QueryRequest.lca_batch("t", [("a", "b")]).params() == {
            "pairs": [["a", "b"]]
        }


class TestTypedQuerySurface:
    def test_lca_matches_handle(self, pooled_store):
        direct = pooled_store.open_tree("fig1").lca("Lla", "Syn")
        result = pooled_store.query(QueryRequest.lca("fig1", "Lla", "Syn"))
        assert result.node.node_id == direct.node_id
        assert result.duration_ms >= 0.0

    def test_lca_batch(self, pooled_store):
        pairs = [("t1", "t60"), ("t5", "t6")]
        expected = pooled_store.open_tree("deep").lca_batch(pairs)
        result = pooled_store.query(QueryRequest.lca_batch("deep", pairs))
        assert [row.node_id for row in result.nodes] == [
            row.node_id for row in expected
        ]
        assert result.summary() == "2 pairs"

    def test_clade(self, pooled_store):
        result = pooled_store.query(QueryRequest.clade("fig1", "Lla", "Syn"))
        names = {row.name for row in result.nodes if row.is_leaf}
        assert {"Lla", "Syn"} <= names

    def test_project_equals_stored_projection(self, pooled_store):
        from repro.storage.projection import project_stored

        expected = project_stored(
            pooled_store.open_tree("deep"), ["t1", "t10", "t20"]
        )
        result = pooled_store.query(
            QueryRequest.project("deep", "t1", "t10", "t20")
        )
        assert write_newick(result.projection) == write_newick(expected)

    def test_match(self, pooled_store):
        result = pooled_store.query(
            QueryRequest.match("fig1", "(Lla,Syn);", ordered=False)
        )
        assert result.matched is not None
        assert result.similarity is not None
        assert result.projection is not None

    def test_node_accessor_rejects_multi_row_results(self, pooled_store):
        result = pooled_store.query(QueryRequest.clade("fig1", "Lla", "Syn"))
        with pytest.raises(QueryError):
            result.node

    def test_record_writes_history(self, pooled_store):
        pooled_store.query(QueryRequest.lca("fig1", "Lla", "Syn"), record=True)
        [entry] = pooled_store.history.recent(limit=1)
        assert entry.operation == "lca"
        assert entry.params == {"taxa": ["Lla", "Syn"]}
        assert entry.duration_ms is not None

    def test_unrecorded_by_default(self, pooled_store):
        before = len(pooled_store.history.recent(limit=100))
        pooled_store.query(QueryRequest.lca("fig1", "Lla", "Syn"))
        assert len(pooled_store.history.recent(limit=100)) == before

    def test_unknown_taxon_is_query_error(self, pooled_store):
        with pytest.raises(QueryError):
            pooled_store.query(QueryRequest.lca("fig1", "Lla", "nope"))


class TestReaderPool:
    def test_size_must_be_positive(self, store_path):
        CrimsonDatabase(store_path).close()
        with pytest.raises(StorageError):
            ReaderPool(store_path, 0)

    def test_memory_rejected(self):
        with pytest.raises(StorageError):
            ReaderPool(":memory:")

    def test_checkout_is_thread_sticky(self, pooled_store):
        pool = pooled_store.pool
        assert pool.checkout() is pool.checkout()

    def test_readers_open_lazily(self, store_path):
        CrimsonDatabase(store_path).close()
        with ReaderPool(store_path, 3) as pool:
            assert pool.open_readers == 0
            pool.checkout()
            assert pool.open_readers == 1

    def test_threads_get_distinct_readers_up_to_size(self, pooled_store):
        seen = []

        def grab():
            seen.append(id(pooled_store.pool.checkout()))

        threads = [threading.Thread(target=grab) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(seen)) == 4

    def test_checkout_after_close_raises(self, store_path):
        CrimsonDatabase(store_path).close()
        pool = ReaderPool(store_path, 1)
        pool.checkout()
        pool.close()
        with pytest.raises(StorageError):
            pool.checkout()

    def test_readers_are_read_only(self, pooled_store):
        reader = pooled_store.pool.checkout()
        assert reader.read_only
        with pytest.raises(StorageError):
            with reader.transaction():
                pass
        with pytest.raises(StorageError):
            reader.execute("INSERT INTO meta VALUES ('x', 'y')")

    def test_missing_file_raises_storage_error(self, tmp_path):
        pool = ReaderPool(str(tmp_path / "absent.db"), 1)
        with pytest.raises(StorageError):
            pool.checkout()


class TestConcurrentReaders:
    """The acceptance stress test: mixed query traffic across threads."""

    N_THREADS = 6

    def _workload(self, store):
        """Run the mixed workload; returns a comparable result signature."""
        lca_ids = [
            store.query(QueryRequest.lca("gold", f"L{i}", f"L{i + 37}")).node.node_id
            for i in range(1, 20)
        ]
        batch = store.query(
            QueryRequest.lca_batch(
                "gold", [(f"L{i}", f"L{200 - i}") for i in range(1, 40)]
            )
        )
        batch_ids = [row.node_id for row in batch.nodes]
        leaves = store.open_tree("gold").leaf_names()
        projection = store.query(
            QueryRequest.project("gold", *leaves[::7])
        )
        return lca_ids, batch_ids, write_newick(projection.projection)

    def test_threaded_results_match_ground_truth(
        self, store_path, random_tree_factory
    ):
        tree = random_tree_factory(240, seed=77)
        with CrimsonStore.open(store_path, readers=4) as store:
            store.load_tree(tree, name="gold")
            expected = self._workload(store)  # single-threaded ground truth

            errors: list[BaseException] = []
            outcomes: list = []

            def run():
                try:
                    outcomes.append(self._workload(store))
                except BaseException as error:  # noqa: BLE001 - recorded
                    errors.append(error)

            threads = [
                threading.Thread(target=run) for _ in range(self.N_THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert not errors, f"threaded queries failed: {errors!r}"
            assert all(outcome == expected for outcome in outcomes)
            assert "locked" not in "".join(repr(error) for error in errors)

    def test_readers_run_beside_the_loader(
        self, store_path, random_tree_factory
    ):
        """WAL property: loads on the writer never block pooled readers."""
        with CrimsonStore.open(store_path, readers=3) as store:
            store.load_tree(random_tree_factory(150, seed=5), name="gold")
            expected = [
                store.query(QueryRequest.lca("gold", f"L{i}", f"L{i + 50}")).node.node_id
                for i in range(1, 30)
            ]
            errors: list[BaseException] = []
            results: list = []
            stop = threading.Event()

            def reader():
                while not stop.is_set():
                    try:
                        got = [
                            store.query(
                                QueryRequest.lca("gold", f"L{i}", f"L{i + 50}")
                            ).node.node_id
                            for i in range(1, 30)
                        ]
                        results.append(got)
                    except BaseException as error:  # noqa: BLE001
                        errors.append(error)
                        return

            threads = [threading.Thread(target=reader) for _ in range(3)]
            for thread in threads:
                thread.start()
            # The writer keeps loading new trees while readers query.
            for round_ in range(5):
                store.load_tree(
                    random_tree_factory(80, seed=round_), name=f"extra{round_}"
                )
            stop.set()
            for thread in threads:
                thread.join()

            assert not errors, f"reader failed during writes: {errors!r}"
            assert results and all(got == expected for got in results)


class TestShardedStore:
    """Multi-database sharding hidden behind the store façade."""

    def _load_set(self, store):
        store.load_tree(sample_tree(), name="fig1")
        store.load_tree(caterpillar(40), name="deep")
        for index in range(4):
            store.load_newick_text(
                "((a:1,b:1):1,(c:1,d:2):1);", name=f"quad{index}"
            )

    def test_trees_distribute_over_all_shards(self, store_path):
        with CrimsonStore.open(store_path, readers=2, shards=4) as store:
            self._load_set(store)
            shards_used = {info.shard for info in store.trees.list_trees()}
            assert shards_used == {0, 1, 2, 3}

    def test_shard_files_created_beside_primary(self, tmp_path):
        path = tmp_path / "catalogue.db"
        with CrimsonStore.open(path, shards=3) as store:
            self._load_set(store)
        assert (tmp_path / "catalogue.shard1.db").exists()
        assert (tmp_path / "catalogue.shard2.db").exists()

    def test_placement_picks_emptiest_shard(self, store_path):
        with CrimsonStore.open(store_path, shards=2) as store:
            store.load_tree(caterpillar(60), name="big")
            store.load_newick_text("(a:1,b:1);", name="small")
            # The big tree landed first (shard 0); the small one must
            # avoid it, and the next one balances by node count.
            by_name = {i.name: i.shard for i in store.trees.list_trees()}
            assert by_name["big"] == 0
            assert by_name["small"] == 1
            store.load_newick_text("(x:1,y:1);", name="tiny")
            tiny = store.trees.info("tiny")
            assert tiny.shard == 1  # shard 1 still holds fewer nodes

    def test_sharded_queries_equal_single_file(self, tmp_path):
        requests = [
            QueryRequest.lca("deep", "t3", "t31"),
            QueryRequest.lca_batch("deep", [("t1", "t40"), ("t7", "t8")]),
            QueryRequest.clade("fig1", "Lla", "Syn"),
            QueryRequest.project("deep", "t2", "t11", "t29"),
            QueryRequest.match("fig1", "(Lla,Syn);", ordered=False),
        ]

        def signature(store):
            rows = []
            for request in requests:
                result = store.query(request)
                rows.append(
                    (
                        [row.node_id for row in result.nodes],
                        write_newick(result.projection)
                        if result.projection is not None
                        else None,
                        result.matched,
                    )
                )
            return rows

        with CrimsonStore.open(tmp_path / "one.db", readers=2) as store:
            self._load_set(store)
            expected = signature(store)
        with CrimsonStore.open(
            tmp_path / "many.db", readers=2, shards=3
        ) as store:
            self._load_set(store)
            assert {i.shard for i in store.trees.list_trees()} == {0, 1, 2}
            assert signature(store) == expected

    def test_open_tree_binds_to_shard_reader(self, store_path):
        with CrimsonStore.open(store_path, readers=2, shards=2) as store:
            self._load_set(store)
            info = next(
                i for i in store.trees.list_trees() if i.shard == 1
            )
            handle = store.open_tree(info.name)
            assert handle.db.read_only
            assert "shard1" in handle.db.path

    def test_reopen_without_shards_restores_layout(self, store_path):
        with CrimsonStore.open(store_path, shards=3) as store:
            self._load_set(store)
            names = {i.name for i in store.trees.list_trees()}
        with CrimsonStore.open(store_path) as store:
            assert store.shards == 3
            assert {i.name for i in store.trees.list_trees()} == names
            result = store.query(QueryRequest.lca("deep", "t1", "t9"))
            assert result.node.node_id == store.open_tree("deep").lca(
                "t1", "t9"
            ).node_id

    def test_growing_shard_count_is_allowed(self, store_path):
        with CrimsonStore.open(store_path, shards=2) as store:
            self._load_set(store)
        with CrimsonStore.open(store_path, shards=4) as store:
            assert store.shards == 4
            store.load_newick_text("(p:1,q:1);", name="extra")
            assert store.query(QueryRequest.lca("fig1", "Lla", "Syn")).node
        with CrimsonStore.open(store_path) as store:
            assert store.shards == 4

    def test_shrinking_shard_count_is_refused(self, store_path):
        with CrimsonStore.open(store_path, shards=3) as store:
            self._load_set(store)
        with pytest.raises(StorageError, match="unreachable"):
            CrimsonStore.open(store_path, shards=2)

    def test_nonpositive_shards_rejected(self, store_path):
        with pytest.raises(StorageError):
            CrimsonStore.open(store_path, shards=0)

    def test_pre_sharding_file_migrates_in_place(self, store_path):
        """A schema-v1 file (no ``shard`` column) opens unchanged."""
        import sqlite3

        with CrimsonStore.open(store_path) as store:
            store.load_newick_text("((a:1,b:1):1,c:2);", name="old")
        connection = sqlite3.connect(store_path)
        connection.execute("ALTER TABLE trees DROP COLUMN shard")
        connection.execute("DELETE FROM meta WHERE key IN ('shards', 'next_tree_id')")
        connection.commit()
        connection.close()
        with CrimsonStore.open(store_path, readers=2) as store:
            assert store.shards == 1
            info = store.trees.info("old")
            assert info.shard == 0
            assert store.query(QueryRequest.lca("old", "a", "b")).node.depth == 1

    def test_delete_tree_purges_shard_rows(self, store_path):
        with CrimsonStore.open(store_path, shards=2) as store:
            self._load_set(store)
            victim = next(
                i for i in store.trees.list_trees() if i.shard == 1
            )
            data_db = store.shard_database(1)
            before = data_db.query_one(
                "SELECT COUNT(*) AS n FROM nodes WHERE tree_id = ?",
                (victim.tree_id,),
            )["n"]
            assert before > 0
            store.trees.delete_tree(victim.name)
            after = data_db.query_one(
                "SELECT COUNT(*) AS n FROM nodes WHERE tree_id = ?",
                (victim.tree_id,),
            )["n"]
            assert after == 0
            assert all(report.ok for report in store.verify())

    def test_parallel_loads_land_on_distinct_shards(self, store_path):
        errors: list[BaseException] = []
        with CrimsonStore.open(store_path, readers=2, shards=4) as store:

            def load(index: int) -> None:
                try:
                    store.load_tree(caterpillar(30), name=f"par{index}")
                except BaseException as error:  # noqa: BLE001 - recorded
                    errors.append(error)

            threads = [
                threading.Thread(target=load, args=(i,)) for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors, f"parallel loads failed: {errors!r}"
            infos = store.trees.list_trees()
            assert len(infos) == 8
            assert len({i.tree_id for i in infos}) == 8
            assert {i.shard for i in infos} == {0, 1, 2, 3}
            for info in infos:
                assert store.open_tree(info.name).lca("t1", "t30").node_id == 0

    def test_repr_mentions_shards(self, store_path):
        with CrimsonStore.open(store_path, shards=2) as store:
            assert "shards=2" in repr(store)

    def test_opening_a_shard_file_directly_is_refused(self, tmp_path):
        """A shard file must not silently grow a catalogue schema."""
        path = tmp_path / "cat.db"
        with CrimsonStore.open(path, shards=2) as store:
            self._load_set(store)
        shard_file = tmp_path / "cat.shard1.db"
        with pytest.raises(StorageError, match="shard file"):
            CrimsonStore.open(shard_file)
        with pytest.raises(StorageError, match="primary"):
            CrimsonDatabase(shard_file)
        # And the reverse: a primary cannot be adopted as a shard.
        with pytest.raises(StorageError, match="primary file"):
            CrimsonDatabase(path, shard_schema=True)

    def test_raw_database_path_respects_the_id_allocator(self, tmp_path):
        """Regression: on a file a sharded store has written, even the
        deprecated raw-database path must allocate ids through the
        ``meta`` counter — AUTOINCREMENT cannot know about ids a failed
        cross-file load burned, and re-issuing one would collide with
        orphaned shard rows."""
        path = tmp_path / "mixed.db"
        with CrimsonStore.open(path, shards=2) as store:
            store.load_newick_text("(a:1,b:1);", name="one")
            store.load_newick_text("(c:1,d:1);", name="two")
        with CrimsonDatabase(path) as raw:
            # Simulate the counter state after a crashed load burned ids.
            with raw.transaction() as connection:
                connection.execute(
                    "UPDATE meta SET value = '10' WHERE key = 'next_tree_id'"
                )
            with pytest.warns(DeprecationWarning):
                repo = TreeRepository(raw)
            handle = repo.store_tree(sample_tree(), name="legacy")
            assert handle.info.tree_id == 10


class TestStaleHandles:
    """The delete-then-query race: stale handles fail loudly (not with
    sqlite errors or misleading unknown-taxon messages)."""

    @pytest.mark.parametrize("shards", [1, 2])
    def test_stale_handle_raises_storage_error(self, tmp_path, shards):
        path = tmp_path / f"stale{shards}.db"
        with CrimsonStore.open(path, readers=2, shards=shards) as store:
            store.load_newick_text("((a:1,b:1):1,c:2);", name="gold")
            handle = store.open_tree("gold")
            assert handle.lca("a", "b").depth == 1
            store.trees.delete_tree("gold")
            # "c" was never fetched, so the lookup misses and the handle
            # must report the deleted tree, not an unknown taxon.
            with pytest.raises(StorageError, match="no longer stored"):
                handle.lca("a", "c")

    def test_stale_handle_race_under_concurrent_delete(self, store_path):
        """A reader thread querying while the tree is deleted sees only
        correct answers or the explicit stale-handle StorageError."""
        with CrimsonStore.open(store_path, readers=2, shards=2) as store:
            store.load_tree(caterpillar(60), name="gold")
            unexpected: list[BaseException] = []
            stale = threading.Event()
            started = threading.Event()

            def reader():
                handle = store.open_tree("gold")
                started.set()
                for i in range(1, 59):
                    try:
                        handle.lca(f"t{i}", f"t{i + 1}")
                    except StorageError:
                        stale.set()
                        return
                    except BaseException as error:  # noqa: BLE001
                        unexpected.append(error)
                        return

            thread = threading.Thread(target=reader)
            thread.start()
            started.wait()
            store.trees.delete_tree("gold")
            thread.join()
            assert not unexpected, f"wrong error type: {unexpected!r}"

    def test_query_after_delete_reports_unknown_tree(self, store_path):
        with CrimsonStore.open(store_path, readers=2) as store:
            store.load_newick_text("(a:1,b:1);", name="gone")
            store.query(QueryRequest.lca("gone", "a", "b"))
            store.trees.delete_tree("gone")
            # The store-level path re-resolves the catalogue (epoch
            # bump), so it reports the missing tree, never sqlite noise.
            with pytest.raises(StorageError, match="no tree named"):
                store.query(QueryRequest.lca("gone", "a", "b"))


class TestDeprecationShims:
    def test_raw_database_construction_warns_but_works(self, db):
        with pytest.warns(DeprecationWarning):
            trees = TreeRepository(db)
        with pytest.warns(DeprecationWarning):
            species = SpeciesRepository(db)
        with pytest.warns(DeprecationWarning):
            history = QueryRepository(db)
        with pytest.warns(DeprecationWarning):
            loader = DataLoader(db)
        handle = loader.load_newick_text("(a:1,b:2);", name="tiny")
        assert trees.info("tiny").n_leaves == 2
        assert handle.lca("a", "b").node_id == 0
        history.record("lca", {"taxa": ["a", "b"]}, tree_name="tiny")
        assert species.count(handle) == 0

    def test_store_construction_does_not_warn(self, store_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with CrimsonStore.open(store_path, readers=2) as store:
                store.load_newick_text("(a:1,b:2);", name="tiny")
                store.query(QueryRequest.lca("tiny", "a", "b"), record=True)
                store.verify()

    def test_repository_rejects_nonsense_owner(self):
        with pytest.raises(StorageError):
            TreeRepository("not a database")


class TestErrorHierarchy:
    def test_cache_size_error_is_crimson_error(self):
        with pytest.raises(CrimsonError):
            LRUCache(0)

    def test_memory_cannot_be_read_only(self):
        with pytest.raises(StorageError):
            CrimsonDatabase(read_only=True)

    def test_query_result_is_frozen(self, pooled_store):
        result = pooled_store.query(QueryRequest.lca("fig1", "Lla", "Syn"))
        assert isinstance(result, QueryResult)
        with pytest.raises(AttributeError):
            result.duration_ms = 0.0  # type: ignore[misc]
