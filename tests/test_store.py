"""Tests of the `CrimsonStore` façade, reader pool, and typed queries.

Covers the session-API redesign: one store handle owning the writer
connection and a pool of read-only WAL readers, the typed
``QueryRequest``/``QueryResult`` surface, the threaded stress contract
(no ``database is locked``, per-thread results equal to single-threaded
ground truth), and the deprecation shims that keep raw-database
construction alive.
"""

from __future__ import annotations

import threading
import warnings

import pytest

from repro.errors import CrimsonError, QueryError, StorageError
from repro.storage.api import QueryRequest, QueryResult
from repro.storage.cache import LRUCache
from repro.storage.database import CrimsonDatabase
from repro.storage.loader import DataLoader
from repro.storage.pool import ReaderPool
from repro.storage.query_repository import QueryRepository
from repro.storage.species_repository import SpeciesRepository
from repro.storage.store import CrimsonStore
from repro.storage.tree_repository import TreeRepository
from repro.trees.build import caterpillar, sample_tree
from repro.trees.newick import write_newick


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "store.db")


@pytest.fixture
def pooled_store(store_path):
    """A file-backed store with readers, seeded with two trees."""
    with CrimsonStore.open(store_path, readers=4) as store:
        store.load_tree(sample_tree(), name="fig1")
        store.load_tree(caterpillar(60), name="deep")
        yield store


class TestCrimsonStoreBasics:
    def test_open_close_context_manager(self, store_path):
        with CrimsonStore.open(store_path, readers=2) as store:
            assert not store.is_closed
            assert store.pool is not None and store.pool.size == 2
        assert store.is_closed
        assert store.pool.is_closed

    def test_memory_store_has_no_pool(self):
        with CrimsonStore.open(readers=4) as store:
            assert store.pool is None
            store.load_tree(sample_tree(), name="fig1")
            result = store.query(QueryRequest.lca("fig1", "Lla", "Syn"))
            direct = store.open_tree("fig1").lca("Lla", "Syn")
            assert result.node.node_id == direct.node_id

    def test_negative_readers_rejected(self, store_path):
        with pytest.raises(StorageError):
            CrimsonStore.open(store_path, readers=-1)

    def test_namespaces_share_one_writer(self, pooled_store):
        assert pooled_store.trees.db is pooled_store.db
        assert pooled_store.species.db is pooled_store.db
        assert pooled_store.history.db is pooled_store.db
        # The loader reuses the store's repositories, not private copies.
        assert pooled_store.loader.trees is pooled_store.trees
        assert pooled_store.loader.species is pooled_store.species

    def test_load_and_catalogue_roundtrip(self, pooled_store):
        names = [info.name for info in pooled_store.trees.list_trees()]
        assert names == ["deep", "fig1"]

    def test_open_tree_is_cached_per_thread(self, pooled_store):
        first = pooled_store.open_tree("fig1")
        assert pooled_store.open_tree("fig1") is first

    def test_open_tree_explicit_cache_size_is_fresh(self, pooled_store):
        cached = pooled_store.open_tree("fig1")
        fresh = pooled_store.open_tree("fig1", cache_size=16)
        assert fresh is not cached
        assert fresh.engine.cache_size == 16

    def test_open_tree_uses_pooled_reader(self, pooled_store):
        handle = pooled_store.open_tree("fig1")
        assert handle.db is not pooled_store.db
        assert handle.db.read_only

    def test_unknown_tree_raises_storage_error(self, pooled_store):
        with pytest.raises(StorageError):
            pooled_store.open_tree("ghost")

    def test_delete_and_restore_invalidates_cached_handles(self, store_path):
        """Regression: a re-stored name must not serve the old tree."""
        with CrimsonStore.open(store_path, readers=2) as store:
            store.load_newick_text("((a:1,b:1):1,c:2);", name="gold")
            before = store.query(QueryRequest.lca("gold", "a", "b")).node
            assert before.depth == 1  # LCA(a, b) is the inner node
            store.trees.delete_tree("gold")
            store.load_newick_text("(a:1,(b:1,c:1):1);", name="gold")
            after = store.query(QueryRequest.lca("gold", "a", "b")).node
            assert after.depth == 0  # in the new topology it is the root
            assert after.node_id == 0

    def test_verify_all_and_one(self, pooled_store):
        reports = pooled_store.verify()
        assert len(reports) == 2 and all(r.ok for r in reports)
        assert pooled_store.verify("fig1")[0].ok

    def test_loader_report_callback(self, store_path):
        messages = []
        with CrimsonStore.open(store_path, report=messages.append) as store:
            store.load_newick_text("(a:1,b:2);", name="tiny")
        assert any("tiny" in message for message in messages)

    def test_repr(self, pooled_store):
        text = repr(pooled_store)
        assert "readers=4" in text and "open" in text


class TestQueryRequestValidation:
    def test_unknown_operation(self):
        with pytest.raises(QueryError):
            QueryRequest(operation="frontier", tree="t", taxa=("a",))

    def test_missing_tree_name(self):
        with pytest.raises(QueryError):
            QueryRequest(operation="lca", tree="", taxa=("a", "b"))

    def test_lca_needs_taxa(self):
        with pytest.raises(QueryError):
            QueryRequest.lca("t")

    def test_batch_needs_pairs(self):
        with pytest.raises(QueryError):
            QueryRequest.lca_batch("t", [])

    def test_project_rejects_node_ids(self):
        with pytest.raises(QueryError):
            QueryRequest.project("t", 3)  # type: ignore[arg-type]

    def test_match_needs_pattern(self):
        with pytest.raises(QueryError):
            QueryRequest(operation="match", tree="t")

    def test_sequences_normalized_to_tuples(self):
        request = QueryRequest.lca_batch("t", [["a", "b"]])
        assert request.pairs == (("a", "b"),)

    def test_params_round_trip(self):
        assert QueryRequest.lca("t", "a", "b").params() == {"taxa": ["a", "b"]}
        assert QueryRequest.match("t", "(a,b);").params() == {
            "pattern": "(a,b);",
            "ordered": True,
        }
        assert QueryRequest.lca_batch("t", [("a", "b")]).params() == {
            "pairs": [["a", "b"]]
        }


class TestTypedQuerySurface:
    def test_lca_matches_handle(self, pooled_store):
        direct = pooled_store.open_tree("fig1").lca("Lla", "Syn")
        result = pooled_store.query(QueryRequest.lca("fig1", "Lla", "Syn"))
        assert result.node.node_id == direct.node_id
        assert result.duration_ms >= 0.0

    def test_lca_batch(self, pooled_store):
        pairs = [("t1", "t60"), ("t5", "t6")]
        expected = pooled_store.open_tree("deep").lca_batch(pairs)
        result = pooled_store.query(QueryRequest.lca_batch("deep", pairs))
        assert [row.node_id for row in result.nodes] == [
            row.node_id for row in expected
        ]
        assert result.summary() == "2 pairs"

    def test_clade(self, pooled_store):
        result = pooled_store.query(QueryRequest.clade("fig1", "Lla", "Syn"))
        names = {row.name for row in result.nodes if row.is_leaf}
        assert {"Lla", "Syn"} <= names

    def test_project_equals_stored_projection(self, pooled_store):
        from repro.storage.projection import project_stored

        expected = project_stored(
            pooled_store.open_tree("deep"), ["t1", "t10", "t20"]
        )
        result = pooled_store.query(
            QueryRequest.project("deep", "t1", "t10", "t20")
        )
        assert write_newick(result.projection) == write_newick(expected)

    def test_match(self, pooled_store):
        result = pooled_store.query(
            QueryRequest.match("fig1", "(Lla,Syn);", ordered=False)
        )
        assert result.matched is not None
        assert result.similarity is not None
        assert result.projection is not None

    def test_node_accessor_rejects_multi_row_results(self, pooled_store):
        result = pooled_store.query(QueryRequest.clade("fig1", "Lla", "Syn"))
        with pytest.raises(QueryError):
            result.node

    def test_record_writes_history(self, pooled_store):
        pooled_store.query(QueryRequest.lca("fig1", "Lla", "Syn"), record=True)
        [entry] = pooled_store.history.recent(limit=1)
        assert entry.operation == "lca"
        assert entry.params == {"taxa": ["Lla", "Syn"]}
        assert entry.duration_ms is not None

    def test_unrecorded_by_default(self, pooled_store):
        before = len(pooled_store.history.recent(limit=100))
        pooled_store.query(QueryRequest.lca("fig1", "Lla", "Syn"))
        assert len(pooled_store.history.recent(limit=100)) == before

    def test_unknown_taxon_is_query_error(self, pooled_store):
        with pytest.raises(QueryError):
            pooled_store.query(QueryRequest.lca("fig1", "Lla", "nope"))


class TestReaderPool:
    def test_size_must_be_positive(self, store_path):
        CrimsonDatabase(store_path).close()
        with pytest.raises(StorageError):
            ReaderPool(store_path, 0)

    def test_memory_rejected(self):
        with pytest.raises(StorageError):
            ReaderPool(":memory:")

    def test_checkout_is_thread_sticky(self, pooled_store):
        pool = pooled_store.pool
        assert pool.checkout() is pool.checkout()

    def test_readers_open_lazily(self, store_path):
        CrimsonDatabase(store_path).close()
        with ReaderPool(store_path, 3) as pool:
            assert pool.open_readers == 0
            pool.checkout()
            assert pool.open_readers == 1

    def test_threads_get_distinct_readers_up_to_size(self, pooled_store):
        seen = []

        def grab():
            seen.append(id(pooled_store.pool.checkout()))

        threads = [threading.Thread(target=grab) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(seen)) == 4

    def test_checkout_after_close_raises(self, store_path):
        CrimsonDatabase(store_path).close()
        pool = ReaderPool(store_path, 1)
        pool.checkout()
        pool.close()
        with pytest.raises(StorageError):
            pool.checkout()

    def test_readers_are_read_only(self, pooled_store):
        reader = pooled_store.pool.checkout()
        assert reader.read_only
        with pytest.raises(StorageError):
            with reader.transaction():
                pass
        with pytest.raises(StorageError):
            reader.execute("INSERT INTO meta VALUES ('x', 'y')")

    def test_missing_file_raises_storage_error(self, tmp_path):
        pool = ReaderPool(str(tmp_path / "absent.db"), 1)
        with pytest.raises(StorageError):
            pool.checkout()


class TestConcurrentReaders:
    """The acceptance stress test: mixed query traffic across threads."""

    N_THREADS = 6

    def _workload(self, store):
        """Run the mixed workload; returns a comparable result signature."""
        lca_ids = [
            store.query(QueryRequest.lca("gold", f"L{i}", f"L{i + 37}")).node.node_id
            for i in range(1, 20)
        ]
        batch = store.query(
            QueryRequest.lca_batch(
                "gold", [(f"L{i}", f"L{200 - i}") for i in range(1, 40)]
            )
        )
        batch_ids = [row.node_id for row in batch.nodes]
        leaves = store.open_tree("gold").leaf_names()
        projection = store.query(
            QueryRequest.project("gold", *leaves[::7])
        )
        return lca_ids, batch_ids, write_newick(projection.projection)

    def test_threaded_results_match_ground_truth(
        self, store_path, random_tree_factory
    ):
        tree = random_tree_factory(240, seed=77)
        with CrimsonStore.open(store_path, readers=4) as store:
            store.load_tree(tree, name="gold")
            expected = self._workload(store)  # single-threaded ground truth

            errors: list[BaseException] = []
            outcomes: list = []

            def run():
                try:
                    outcomes.append(self._workload(store))
                except BaseException as error:  # noqa: BLE001 - recorded
                    errors.append(error)

            threads = [
                threading.Thread(target=run) for _ in range(self.N_THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert not errors, f"threaded queries failed: {errors!r}"
            assert all(outcome == expected for outcome in outcomes)
            assert "locked" not in "".join(repr(error) for error in errors)

    def test_readers_run_beside_the_loader(
        self, store_path, random_tree_factory
    ):
        """WAL property: loads on the writer never block pooled readers."""
        with CrimsonStore.open(store_path, readers=3) as store:
            store.load_tree(random_tree_factory(150, seed=5), name="gold")
            expected = [
                store.query(QueryRequest.lca("gold", f"L{i}", f"L{i + 50}")).node.node_id
                for i in range(1, 30)
            ]
            errors: list[BaseException] = []
            results: list = []
            stop = threading.Event()

            def reader():
                while not stop.is_set():
                    try:
                        got = [
                            store.query(
                                QueryRequest.lca("gold", f"L{i}", f"L{i + 50}")
                            ).node.node_id
                            for i in range(1, 30)
                        ]
                        results.append(got)
                    except BaseException as error:  # noqa: BLE001
                        errors.append(error)
                        return

            threads = [threading.Thread(target=reader) for _ in range(3)]
            for thread in threads:
                thread.start()
            # The writer keeps loading new trees while readers query.
            for round_ in range(5):
                store.load_tree(
                    random_tree_factory(80, seed=round_), name=f"extra{round_}"
                )
            stop.set()
            for thread in threads:
                thread.join()

            assert not errors, f"reader failed during writes: {errors!r}"
            assert results and all(got == expected for got in results)


class TestDeprecationShims:
    def test_raw_database_construction_warns_but_works(self, db):
        with pytest.warns(DeprecationWarning):
            trees = TreeRepository(db)
        with pytest.warns(DeprecationWarning):
            species = SpeciesRepository(db)
        with pytest.warns(DeprecationWarning):
            history = QueryRepository(db)
        with pytest.warns(DeprecationWarning):
            loader = DataLoader(db)
        handle = loader.load_newick_text("(a:1,b:2);", name="tiny")
        assert trees.info("tiny").n_leaves == 2
        assert handle.lca("a", "b").node_id == 0
        history.record("lca", {"taxa": ["a", "b"]}, tree_name="tiny")
        assert species.count(handle) == 0

    def test_store_construction_does_not_warn(self, store_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with CrimsonStore.open(store_path, readers=2) as store:
                store.load_newick_text("(a:1,b:2);", name="tiny")
                store.query(QueryRequest.lca("tiny", "a", "b"), record=True)
                store.verify()

    def test_repository_rejects_nonsense_owner(self):
        with pytest.raises(StorageError):
            TreeRepository("not a database")


class TestErrorHierarchy:
    def test_cache_size_error_is_crimson_error(self):
        with pytest.raises(CrimsonError):
            LRUCache(0)

    def test_memory_cannot_be_read_only(self):
        with pytest.raises(StorageError):
            CrimsonDatabase(read_only=True)

    def test_query_result_is_frozen(self, pooled_store):
        result = pooled_store.query(QueryRequest.lca("fig1", "Lla", "Syn"))
        assert isinstance(result, QueryResult)
        with pytest.raises(AttributeError):
            result.duration_ms = 0.0  # type: ignore[misc]
