"""Unit tests for traversal utilities."""

from __future__ import annotations

import pytest

from repro.trees.build import caterpillar
from repro.trees.traversal import (
    depth_table,
    iter_edges,
    naive_lca,
    path_to_root,
    preorder_intervals,
    preorder_table,
    root_distance_table,
)


class TestPreorderTables:
    def test_ranks_are_dense(self, fig1):
        ranks = preorder_table(fig1)
        assert sorted(ranks.values()) == list(range(fig1.size()))

    def test_intervals_nest(self, fig1):
        intervals = preorder_intervals(fig1)
        for node in fig1.preorder():
            low, high = intervals[id(node)]
            for descendant in node.preorder():
                d_low, d_high = intervals[id(descendant)]
                assert low <= d_low <= d_high <= high

    def test_leaf_interval_is_point(self, fig1):
        intervals = preorder_intervals(fig1)
        leaf = fig1.find("Lla")
        low, high = intervals[id(leaf)]
        assert low == high

    def test_root_interval_spans_tree(self, fig1):
        intervals = preorder_intervals(fig1)
        assert intervals[id(fig1.root)] == (0, fig1.size() - 1)

    def test_interval_contains_exactly_subtree(self, fig1):
        intervals = preorder_intervals(fig1)
        ranks = preorder_table(fig1)
        x = fig1.find("x")
        low, high = intervals[id(x)]
        inside = {
            node.name
            for node in fig1.preorder()
            if low <= ranks[id(node)] <= high
        }
        assert inside == {"x", "Lla", "Spy"}


class TestDepthAndDistance:
    def test_depth_table(self, fig1):
        depths = depth_table(fig1)
        assert depths[id(fig1.find("Spy"))] == 3

    def test_distance_table(self, fig1):
        distances = root_distance_table(fig1)
        assert distances[id(fig1.find("Bha"))] == pytest.approx(2.25)

    def test_deep_tree_single_pass(self):
        tree = caterpillar(5000)
        depths = depth_table(tree)
        assert max(depths.values()) == tree.max_depth()


class TestEdgesAndPaths:
    def test_iter_edges_count(self, fig1):
        assert sum(1 for _ in iter_edges(fig1)) == fig1.size() - 1

    def test_edges_are_parent_child(self, fig1):
        for parent, child in iter_edges(fig1):
            assert child.parent is parent

    def test_path_to_root(self, fig1):
        path = [node.name for node in path_to_root(fig1.find("Lla"))]
        assert path == ["Lla", "x", "A", "R"]


class TestNaiveLca:
    def test_basic(self, fig1):
        assert naive_lca(fig1.find("Lla"), fig1.find("Spy")) is fig1.find("x")

    def test_self_lca(self, fig1):
        node = fig1.find("Syn")
        assert naive_lca(node, node) is node

    def test_ancestor_descendant(self, fig1):
        assert naive_lca(fig1.find("A"), fig1.find("Lla")) is fig1.find("A")

    def test_disjoint_trees_raise(self, fig1):
        from repro.trees.build import sample_tree

        other = sample_tree()
        with pytest.raises(ValueError):
            naive_lca(fig1.find("Lla"), other.find("Spy"))
