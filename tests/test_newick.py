"""Unit tests for the Newick reader/writer."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.trees.newick import parse_newick, write_newick
from repro.trees.tree import PhyloTree


class TestParseBasics:
    def test_simple_binary(self):
        tree = parse_newick("(a:1,b:2);")
        assert set(tree.leaf_names()) == {"a", "b"}
        assert tree.find("a").length == 1.0
        assert tree.find("b").length == 2.0

    def test_nested(self):
        tree = parse_newick("((a:1,b:1):0.5,c:2);")
        assert tree.max_depth() == 2
        assert tree.root.children[0].length == 0.5

    def test_interior_labels(self):
        tree = parse_newick("((a,b)ab,c)root;")
        assert tree.root.name == "root"
        assert tree.find("ab").children

    def test_multifurcation(self):
        tree = parse_newick("(a,b,c,d);")
        assert len(tree.root.children) == 4

    def test_no_lengths(self):
        tree = parse_newick("(a,b);")
        assert tree.find("a").length == 0.0

    def test_scientific_notation_length(self):
        tree = parse_newick("(a:1e-3,b:2.5E2);")
        assert tree.find("a").length == pytest.approx(1e-3)
        assert tree.find("b").length == pytest.approx(250.0)

    def test_single_node(self):
        tree = parse_newick("lonely;")
        assert tree.root.name == "lonely"
        assert tree.size() == 1

    def test_single_node_with_length(self):
        tree = parse_newick("lonely:3.5;")
        assert tree.root.name == "lonely"


class TestQuotingAndComments:
    def test_quoted_label(self):
        tree = parse_newick("('Homo sapiens':1,b:1);")
        assert "Homo sapiens" in tree

    def test_quoted_label_with_escaped_quote(self):
        tree = parse_newick("('it''s':1,b:1);")
        assert "it's" in tree

    def test_underscore_means_space_unquoted(self):
        tree = parse_newick("(Homo_sapiens:1,b:1);")
        assert "Homo sapiens" in tree

    def test_comments_are_skipped(self):
        tree = parse_newick("[&R] (a:1[a comment],b:1) [trailing];")
        assert set(tree.leaf_names()) == {"a", "b"}

    def test_metacharacters_survive_roundtrip(self):
        tree = parse_newick("('we(ird)':1,'col:on':2);")
        again = parse_newick(write_newick(tree))
        assert set(again.leaf_names()) == {"we(ird)", "col:on"}

    def test_underscore_name_roundtrip(self):
        from repro.trees.node import Node

        root = Node()
        root.new_child("has_underscore", 1.0)
        root.new_child("b", 1.0)
        again = parse_newick(write_newick(PhyloTree(root)))
        assert "has_underscore" in again


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "(a,b)",  # missing semicolon
            "(a,(b,c);",  # unbalanced open
            "(a,b));",  # unbalanced close
            "a,b;",  # comma outside parens
            "(a:1,b:bad);",  # invalid length
            "(a,b); trailing",  # text after ;
            "(a[unclosed,b);",  # unterminated comment
            "('unclosed,b);",  # unterminated quote
        ],
    )
    def test_malformed_inputs_raise(self, text):
        with pytest.raises(ParseError):
            parse_newick(text)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_newick("(a:1,b:xyz);")
        assert excinfo.value.position is not None


class TestWriter:
    def test_roundtrip_fig1(self, fig1):
        text = write_newick(fig1)
        again = parse_newick(text)
        assert again.equals(fig1)

    def test_without_lengths(self, fig1):
        text = write_newick(fig1, include_lengths=False)
        assert ":" not in text

    def test_child_order_preserved(self):
        text = "(c:1.0,(b:1.0,a:1.0):1.0);"
        assert write_newick(parse_newick(text)) == text

    def test_deep_tree_roundtrip(self):
        # A 5000-level ladder must serialize without recursion errors.
        from repro.trees.build import caterpillar

        tree = caterpillar(5000)
        again = parse_newick(write_newick(tree))
        assert again.n_leaves() == 5000
        assert again.equals(tree)

    def test_roundtrip_via_method(self, fig1):
        assert PhyloTree.from_newick(fig1.to_newick()).equals(fig1)
