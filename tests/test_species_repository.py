"""Unit tests for the Species Repository."""

from __future__ import annotations

import pytest

from repro.errors import QueryError, StorageError
from repro.storage.species_repository import SpeciesRepository
from repro.storage.tree_repository import TreeRepository


@pytest.fixture
def setup(db, fig1):
    trees = TreeRepository(db)
    species = SpeciesRepository(db)
    stored = trees.store_tree(fig1, f=2)
    return stored, species


class TestAttach:
    def test_attach_and_fetch(self, setup):
        stored, species = setup
        count = species.attach_sequences(stored, {"Lla": "ACGT", "Spy": "AGGT"})
        assert count == 2
        assert species.sequence_of(stored, "Lla") == "ACGT"

    def test_attach_unknown_taxon_raises(self, setup):
        stored, species = setup
        with pytest.raises(QueryError):
            species.attach_sequences(stored, {"ghost": "ACGT"})

    def test_conflict_without_replace(self, setup):
        stored, species = setup
        species.attach_sequences(stored, {"Lla": "ACGT"})
        with pytest.raises(StorageError):
            species.attach_sequences(stored, {"Lla": "TTTT"})

    def test_replace_overwrites(self, setup):
        stored, species = setup
        species.attach_sequences(stored, {"Lla": "ACGT"})
        species.attach_sequences(stored, {"Lla": "TTTT"}, replace=True)
        assert species.sequence_of(stored, "Lla") == "TTTT"

    def test_char_type_recorded(self, setup, db):
        stored, species = setup
        species.attach_sequences(stored, {"Lla": "MKV"}, char_type="PROTEIN")
        row = db.query_one("SELECT char_type FROM species")
        assert row["char_type"] == "PROTEIN"

    def test_interior_nodes_can_carry_data(self, setup):
        # The gold standard may record ancestral sequences too.
        stored, species = setup
        species.attach_sequences(stored, {"x": "ACGT"})
        assert species.sequence_of(stored, "x") == "ACGT"


class TestFetch:
    def test_missing_data_raises(self, setup):
        stored, species = setup
        with pytest.raises(QueryError):
            species.sequence_of(stored, "Lla")

    def test_unknown_taxon_raises(self, setup):
        stored, species = setup
        with pytest.raises(QueryError):
            species.sequence_of(stored, "ghost")

    def test_sequences_for(self, setup):
        stored, species = setup
        species.attach_sequences(stored, {"Lla": "AC", "Spy": "AG", "Bha": "TT"})
        fetched = species.sequences_for(stored, ["Lla", "Bha"])
        assert fetched == {"Lla": "AC", "Bha": "TT"}

    def test_sequences_for_partial_missing_raises(self, setup):
        stored, species = setup
        species.attach_sequences(stored, {"Lla": "AC"})
        with pytest.raises(QueryError):
            species.sequences_for(stored, ["Lla", "Spy"])


class TestCountAndDelete:
    def test_count(self, setup):
        stored, species = setup
        assert species.count(stored) == 0
        species.attach_sequences(stored, {"Lla": "AC", "Spy": "AG"})
        assert species.count(stored) == 2

    def test_delete_for_tree(self, setup):
        stored, species = setup
        species.attach_sequences(stored, {"Lla": "AC"})
        assert species.delete_for_tree(stored) == 1
        assert species.count(stored) == 0

    def test_separation_between_trees(self, db, fig1):
        """Species rows are keyed per tree: same taxon names in two trees
        do not collide."""
        from repro.trees.build import sample_tree

        trees = TreeRepository(db)
        species = SpeciesRepository(db)
        first = trees.store_tree(fig1, name="first")
        second = trees.store_tree(sample_tree(), name="second")
        species.attach_sequences(first, {"Lla": "AAAA"})
        species.attach_sequences(second, {"Lla": "CCCC"})
        assert species.sequence_of(first, "Lla") == "AAAA"
        assert species.sequence_of(second, "Lla") == "CCCC"
