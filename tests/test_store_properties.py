"""Property-based tests over the relational store.

Hypothesis generates arbitrary trees and label bounds; every stored
tree must verify clean, answer SQL LCA identically to the in-memory
naive walk, project identically to the in-memory algorithm, and
round-trip bit-for-bit.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.projection import project_tree
from repro.storage.database import CrimsonDatabase
from repro.storage.maintenance import verify_tree
from repro.storage.projection import project_stored
from repro.storage.tree_repository import TreeRepository
from repro.trees.node import Node
from repro.trees.traversal import naive_lca
from repro.trees.tree import PhyloTree

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def named_trees(draw, max_nodes: int = 30):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = random.Random(seed)
    root = Node("n0")
    nodes = [root]
    for index in range(1, n):
        parent = rng.choice(nodes)
        child = Node(f"n{index}", rng.uniform(0.0, 2.0))
        parent.add_child(child)
        nodes.append(child)
    return PhyloTree(root, name="prop")


label_bounds = st.integers(min_value=1, max_value=5)


@SETTINGS
@given(tree=named_trees(), f=label_bounds)
def test_stored_tree_verifies_clean(tree, f):
    with CrimsonDatabase() as db:
        TreeRepository(db).store_tree(tree, f=f)
        assert verify_tree(db, "prop").ok


@SETTINGS
@given(tree=named_trees(), f=label_bounds, seed=st.integers(0, 2**31))
def test_sql_lca_equals_naive(tree, f, seed):
    with CrimsonDatabase() as db:
        handle = TreeRepository(db).store_tree(tree, f=f)
        nodes = list(tree.preorder())
        rng = random.Random(seed)
        for _ in range(8):
            a = rng.choice(nodes)
            b = rng.choice(nodes)
            assert handle.lca(a.name, b.name).name == naive_lca(a, b).name


@SETTINGS
@given(tree=named_trees(), f=label_bounds, seed=st.integers(0, 2**31))
def test_sql_projection_equals_in_memory(tree, f, seed):
    leaves = [leaf.name for leaf in tree.root.leaves()]
    rng = random.Random(seed)
    sample = rng.sample(leaves, rng.randint(1, len(leaves)))
    with CrimsonDatabase() as db:
        handle = TreeRepository(db).store_tree(tree, f=f)
        via_sql = project_stored(handle, sample)
        in_memory = project_tree(tree, sample)
        assert via_sql.equals(in_memory, tolerance=1e-9)


@SETTINGS
@given(tree=named_trees(), f=label_bounds)
def test_store_roundtrip(tree, f):
    with CrimsonDatabase() as db:
        handle = TreeRepository(db).store_tree(tree, f=f)
        fetched = handle.fetch_tree()
        assert fetched.equals(tree, tolerance=0.0)


@SETTINGS
@given(tree=named_trees(), f=label_bounds, time=st.floats(0.0, 5.0))
def test_sql_frontier_is_minimal_cut(tree, f, time):
    with CrimsonDatabase() as db:
        handle = TreeRepository(db).store_tree(tree, f=f)
        frontier = handle.time_frontier(time)
        distances = tree.distances_from_root()
        names = {row.name for row in frontier}
        for node in tree.preorder():
            past = distances[id(node)] > time
            parent_within = (
                node.parent is None or distances[id(node.parent)] <= time
            )
            assert (node.name in names) == (past and parent_within)
