"""Unit tests for the unified LCA service."""

from __future__ import annotations

import pytest

from repro.core.lca import DEFAULT_LABEL_BOUND, LcaService
from repro.errors import QueryError
from repro.trees.traversal import naive_lca


class TestStrategies:
    @pytest.mark.parametrize("strategy", ["naive", "dewey", "layered"])
    def test_all_strategies_agree(self, fig1, strategy):
        service = LcaService(fig1, strategy)
        nodes = list(fig1.preorder())
        for a in nodes:
            for b in nodes:
                assert service.lca(a, b) is naive_lca(a, b)

    def test_unknown_strategy_raises(self, fig1):
        with pytest.raises(QueryError):
            LcaService(fig1, "magic")  # type: ignore[arg-type]

    @pytest.mark.parametrize("strategy", ["naive", "dewey", "layered"])
    def test_lca_many(self, fig1, strategy):
        service = LcaService(fig1, strategy)
        anchor = service.lca_many([fig1.find("Lla"), fig1.find("Bha")])
        assert anchor is fig1.find("A")

    @pytest.mark.parametrize("strategy", ["naive", "dewey", "layered"])
    def test_lca_many_empty(self, fig1, strategy):
        with pytest.raises(QueryError):
            LcaService(fig1, strategy).lca_many([])

    @pytest.mark.parametrize("strategy", ["naive", "dewey", "layered"])
    def test_ancestor_test(self, fig1, strategy):
        service = LcaService(fig1, strategy)
        assert service.is_ancestor_or_self(fig1.find("x"), fig1.find("Spy"))
        assert not service.is_ancestor_or_self(fig1.find("Bha"), fig1.find("Spy"))

    def test_custom_label_bound(self, fig1):
        service = LcaService(fig1, "layered", f=2)
        assert service._layered is not None
        assert service._layered.f == 2

    def test_default_bound_sane(self):
        assert 2 <= DEFAULT_LABEL_BOUND <= 64

    def test_repr(self, fig1):
        assert "layered" in repr(LcaService(fig1))
