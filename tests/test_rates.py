"""Unit tests for site-rate heterogeneity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation.rates import SiteRates, discrete_gamma_rates


class TestDiscreteGamma:
    def test_mean_is_one(self):
        for alpha in (0.1, 0.5, 1.0, 2.0, 10.0):
            rates = discrete_gamma_rates(alpha, 4)
            assert rates.mean() == pytest.approx(1.0)

    def test_rates_increase(self):
        rates = discrete_gamma_rates(0.5, 6)
        assert np.all(np.diff(rates) > 0)

    def test_small_alpha_is_more_skewed(self):
        mild = discrete_gamma_rates(10.0, 4)
        harsh = discrete_gamma_rates(0.2, 4)
        assert harsh.max() / harsh.min() > mild.max() / mild.min()

    def test_single_category_is_flat(self):
        rates = discrete_gamma_rates(0.5, 1)
        assert rates.shape == (1,)
        assert rates[0] == pytest.approx(1.0)

    def test_invalid_alpha(self):
        with pytest.raises(SimulationError):
            discrete_gamma_rates(0.0)

    def test_invalid_categories(self):
        with pytest.raises(SimulationError):
            discrete_gamma_rates(1.0, 0)


class TestSiteRates:
    def test_homogeneous_default(self, rng):
        site_rates = SiteRates(100, rng)
        assert np.all(site_rates.rates == 1.0)

    def test_gamma_assignment_uses_categories(self, rng):
        site_rates = SiteRates(5000, rng, alpha=0.5, n_categories=4)
        assert len(site_rates.unique_rates()) == 4

    def test_invariant_sites(self, rng):
        site_rates = SiteRates(5000, rng, proportion_invariant=0.3)
        zero_fraction = (site_rates.rates == 0.0).mean()
        assert zero_fraction == pytest.approx(0.3, abs=0.03)

    def test_invariant_rescaling_keeps_mean_one(self, rng):
        site_rates = SiteRates(
            5000, rng, alpha=1.0, proportion_invariant=0.25
        )
        assert site_rates.rates.mean() == pytest.approx(1.0)

    def test_sites_with_rate(self, rng):
        site_rates = SiteRates(200, rng, alpha=0.7)
        for rate in site_rates.unique_rates():
            sites = site_rates.sites_with_rate(float(rate))
            assert np.all(site_rates.rates[sites] == rate)

    def test_invalid_length(self, rng):
        with pytest.raises(SimulationError):
            SiteRates(0, rng)

    def test_invalid_invariant_proportion(self, rng):
        with pytest.raises(SimulationError):
            SiteRates(10, rng, proportion_invariant=1.0)
