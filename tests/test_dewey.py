"""Unit tests for plain Dewey labeling."""

from __future__ import annotations

import pytest

from repro.core.dewey import (
    DeweyIndex,
    common_prefix,
    common_prefix_all,
    is_prefix,
    label_from_string,
    label_to_string,
)
from repro.errors import QueryError
from repro.trees.build import caterpillar
from repro.trees.node import Node
from repro.trees.tree import PhyloTree


class TestLabelStrings:
    def test_root_label_is_empty_string(self):
        assert label_to_string(()) == ""

    def test_roundtrip(self):
        assert label_from_string(label_to_string((2, 1, 1))) == (2, 1, 1)

    def test_empty_string_is_root(self):
        assert label_from_string("") == ()

    def test_invalid_component(self):
        with pytest.raises(QueryError):
            label_from_string("2.x.1")

    def test_zero_component_rejected(self):
        with pytest.raises(QueryError):
            label_from_string("2.0.1")


class TestPrefixAlgebra:
    def test_common_prefix(self):
        assert common_prefix((2, 1, 1), (2, 1, 2)) == (2, 1)

    def test_disjoint_prefix(self):
        assert common_prefix((1, 2), (2, 1)) == ()

    def test_identical(self):
        assert common_prefix((3, 1), (3, 1)) == (3, 1)

    def test_prefix_of_longer(self):
        assert common_prefix((2,), (2, 5, 7)) == (2,)

    def test_common_prefix_all(self):
        labels = [(2, 1, 1), (2, 1, 2), (2, 3)]
        assert common_prefix_all(labels) == (2,)

    def test_common_prefix_all_empty_raises(self):
        with pytest.raises(QueryError):
            common_prefix_all([])

    def test_is_prefix(self):
        assert is_prefix((2, 1), (2, 1, 5))
        assert is_prefix((), (1,))
        assert is_prefix((2,), (2,))
        assert not is_prefix((2, 2), (2, 1, 5))
        assert not is_prefix((2, 1, 5), (2, 1))


class TestDeweyIndex:
    def test_labels_unique(self, fig1):
        index = DeweyIndex(fig1)
        labels = [index.label(node) for node in fig1.preorder()]
        assert len(set(labels)) == len(labels)

    def test_node_at_inverts_label(self, fig1):
        index = DeweyIndex(fig1)
        for node in fig1.preorder():
            assert index.node_at(index.label(node)) is node

    def test_node_at_unknown_raises(self, fig1):
        index = DeweyIndex(fig1)
        with pytest.raises(QueryError):
            index.node_at((9, 9, 9))

    def test_foreign_node_raises(self, fig1):
        index = DeweyIndex(fig1)
        with pytest.raises(QueryError):
            index.label(Node("alien"))

    def test_lca_matches_naive(self, fig1, random_tree_factory):
        from repro.trees.traversal import naive_lca

        for seed in range(5):
            tree = random_tree_factory(40, seed)
            index = DeweyIndex(tree)
            nodes = list(tree.preorder())
            for a in nodes[::3]:
                for b in nodes[::4]:
                    assert index.lca(a, b) is naive_lca(a, b)

    def test_lca_many(self, fig1):
        index = DeweyIndex(fig1)
        anchor = index.lca_many(
            [fig1.find("Lla"), fig1.find("Spy"), fig1.find("Bha")]
        )
        assert anchor is fig1.find("A")

    def test_lca_many_empty_raises(self, fig1):
        with pytest.raises(QueryError):
            DeweyIndex(fig1).lca_many([])

    def test_is_ancestor_or_self(self, fig1):
        index = DeweyIndex(fig1)
        assert index.is_ancestor_or_self(fig1.find("A"), fig1.find("Lla"))
        assert index.is_ancestor_or_self(fig1.find("Lla"), fig1.find("Lla"))
        assert not index.is_ancestor_or_self(fig1.find("Lla"), fig1.find("A"))

    def test_max_label_length_equals_depth(self):
        tree = caterpillar(50)
        index = DeweyIndex(tree)
        assert index.max_label_length() == tree.max_depth()

    def test_label_bytes_grow_superlinearly_with_depth(self):
        """The paper's complaint: total Dewey label bytes on a deep chain
        grow quadratically (each node stores its whole path)."""
        small = DeweyIndex(caterpillar(50)).total_label_bytes()
        large = DeweyIndex(caterpillar(200)).total_label_bytes()
        assert large > 10 * small

    def test_single_node_tree(self):
        tree = PhyloTree(Node("only"))
        index = DeweyIndex(tree)
        assert index.label(tree.root) == ()
        assert index.max_label_length() == 0
        assert index.lca(tree.root, tree.root) is tree.root

    def test_insertion_order_is_preorder(self, fig1, random_tree_factory):
        """Regression: the build traversal used to visit reversed-DFS,
        so the index dicts' insertion order violated pre-order."""
        for tree in (fig1, random_tree_factory(60, seed=9)):
            index = DeweyIndex(tree)
            expected = [id(node) for node in tree.preorder()]
            assert list(index._label_of) == expected
            assert [id(node) for node in index._node_at.values()] == expected

    def test_lca_many_early_exit_at_root(self, fig1):
        """Once the running prefix reaches the root, remaining nodes are
        skipped — a foreign node after that point is never inspected."""
        index = DeweyIndex(fig1)
        foreign = Node("alien")
        result = index.lca_many(
            [fig1.find("Lla"), fig1.find("Syn"), foreign]
        )
        assert result is fig1.root
        # Before the root is reached, the foreign node must still raise.
        with pytest.raises(QueryError):
            index.lca_many([fig1.find("Lla"), foreign])
