"""Unit tests for NNI/SPR rearrangements."""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchmark.metrics import robinson_foulds
from repro.errors import TreeStructureError
from repro.reconstruction.rearrange import (
    nni_neighbors,
    perturb,
    random_spr,
    spr_move,
)
from repro.simulation.birth_death import yule_tree
from repro.trees.newick import parse_newick
from repro.trees.tree import validate_tree


class TestNniNeighbors:
    def test_neighbor_count_on_quartet(self):
        tree = parse_newick("((a,b),(c,d));")
        neighbors = nni_neighbors(tree)
        assert 1 <= len(neighbors) <= 4
        for neighbor in neighbors:
            assert set(neighbor.leaf_names()) == {"a", "b", "c", "d"}

    def test_neighbors_differ_from_origin(self):
        tree = parse_newick("((a,b),(c,d));")
        for neighbor in nni_neighbors(tree):
            assert neighbor.topology_key() != tree.topology_key()

    def test_neighbors_are_valid_trees(self, rng):
        tree = yule_tree(10, rng=rng)
        for neighbor in nni_neighbors(tree):
            validate_tree(neighbor, require_leaf_names=False)

    def test_original_unchanged(self):
        tree = parse_newick("((a,b),(c,d));")
        before = tree.to_newick()
        nni_neighbors(tree)
        assert tree.to_newick() == before

    def test_rf_distance_of_nni_is_two(self):
        """An NNI changes exactly one split on binary trees."""
        tree = parse_newick("(((a,b),c),((d,e),f));")
        for neighbor in nni_neighbors(tree):
            assert robinson_foulds(tree, neighbor) <= 2


class TestSprMove:
    def test_basic_move(self):
        tree = parse_newick("(((a,b)ab,c)abc,(d,e)de);")
        moved = spr_move(tree, "a", "d")
        assert set(moved.leaf_names()) == {"a", "b", "c", "d", "e"}
        # a now sits with d.
        a = moved.find("a")
        assert "d" in {leaf.name for leaf in a.parent.leaves()}

    def test_unary_suppression(self):
        tree = parse_newick("(((a,b)ab,c)abc,(d,e)de);")
        moved = spr_move(tree, "a", "d")
        for node in moved.preorder():
            assert node.is_leaf or len(node.children) >= 2

    def test_edge_lengths_preserved_total(self):
        tree = parse_newick("(((a:1,b:1):1,c:1):1,(d:1,e:1):1);")
        moved = spr_move(tree, "a", "d")
        # Total length is conserved: the split edge re-sums to the
        # original and the suppressed edge merges into its child.
        assert moved.total_edge_length() == pytest.approx(
            tree.total_edge_length()
        )

    def test_prune_root_rejected(self):
        tree = parse_newick("((a,b)ab,c)r;")
        with pytest.raises(TreeStructureError):
            spr_move(tree, "r", "a")

    def test_attach_inside_pruned_subtree_rejected(self):
        tree = parse_newick("(((a,b)ab,c),d);")
        with pytest.raises(TreeStructureError):
            spr_move(tree, "ab", "a")

    def test_original_untouched(self):
        tree = parse_newick("(((a,b)ab,c)abc,(d,e)de);")
        before = tree.to_newick()
        spr_move(tree, "a", "d")
        assert tree.to_newick() == before

    def test_interior_subtree_move(self):
        tree = parse_newick("(((a,b)ab,c)abc,((d,e)de,f)def);")
        moved = spr_move(tree, "ab", "f")
        assert set(moved.leaf_names()) == set("abcdef")
        validate_tree(moved)


class TestRandomAndPerturb:
    def test_random_spr_changes_topology(self, rng):
        tree = yule_tree(12, rng=rng)
        moved = random_spr(tree, rng)
        assert moved.topology_key() != tree.topology_key()
        assert set(moved.leaf_names()) == set(tree.leaf_names())

    def test_perturb_zero_is_identity(self, rng):
        tree = yule_tree(8, rng=rng)
        assert perturb(tree, 0, rng).topology_key() == tree.topology_key()

    def test_perturb_negative_raises(self, rng):
        with pytest.raises(TreeStructureError):
            perturb(yule_tree(8, rng=rng), -1, rng)

    def test_too_small_raises(self, rng):
        tree = parse_newick("(a,b);")
        with pytest.raises(TreeStructureError):
            random_spr(tree, rng)

    def test_rf_grows_with_moves_on_average(self):
        """Metric calibration: more SPR moves → larger RF distance from
        the origin, on average (the property E7's metrics rely on)."""
        rng = np.random.default_rng(9)
        tree = yule_tree(30, rng=rng)
        mean_rf = []
        for moves in (1, 4, 10):
            values = [
                robinson_foulds(tree, perturb(tree, moves, rng))
                for _ in range(5)
            ]
            mean_rf.append(np.mean(values))
        assert mean_rf[0] < mean_rf[-1]

    def test_perturbed_trees_remain_valid(self, rng):
        tree = yule_tree(15, rng=rng)
        moved = perturb(tree, 5, rng)
        validate_tree(moved, require_leaf_names=False)
        assert moved.n_leaves() == 15
