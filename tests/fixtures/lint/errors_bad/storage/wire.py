from repro.errors import CrimsonError, StorageError

ERROR_KINDS = {
    "CrimsonError": CrimsonError,
    "StorageError": StorageError,
    "ParseError": None,
}
