class CrimsonError(Exception):
    pass


class StorageError(CrimsonError):
    pass


class QueryError(CrimsonError):
    pass


class ResourceError(CrimsonError):
    pass
