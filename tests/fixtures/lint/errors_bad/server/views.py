def fetch(store, name):
    if name is None:
        raise ValueError("a name is required")
    try:
        return store.describe(name)
    except Exception:
        return None
