from repro.errors import CrimsonError


class AnalyticsError(CrimsonError):
    pass
