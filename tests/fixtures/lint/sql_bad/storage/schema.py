"""Deliberately drifted schema: TABLE_COLUMNS declares a ``ghosts``
table with no DDL, the DDL's ``trees`` has no ``weight`` column, and
SHARD_TABLES lists a ``phantom`` table absent from the shard DDL."""

TABLE_COLUMNS = {"trees": ("tree_id", "name"), "ghosts": ("x",)}

DDL_STATEMENTS = (
    "CREATE TABLE IF NOT EXISTS trees ("
    "  tree_id INTEGER PRIMARY KEY,"
    "  name TEXT"
    ")",
)

SHARD_DDL_STATEMENTS = (
    "CREATE TABLE IF NOT EXISTS nodes ("
    "  node_id INTEGER,"
    "  tree_id INTEGER,"
    "  label TEXT"
    ")",
)

SHARD_TABLES = ("nodes", "phantom")
