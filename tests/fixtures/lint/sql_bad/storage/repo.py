"""One sink call per sql-* violation kind (see the fixture README)."""


def bad(db, name):
    # sql-schema: ``weight`` is not a column of ``trees``.
    db.query_one("SELECT weight FROM trees WHERE name = ?", (name,))
    # sql-schema: ``missing_table`` exists in neither DDL nor
    # TABLE_COLUMNS.
    db.query_all("SELECT * FROM missing_table")
    # sql-placeholders: two ``?`` but the tuple carries one value.
    db.execute("INSERT INTO trees (tree_id, name) VALUES (?, ?)", (1,))
    # sql-interpolation: a runtime value spliced into the statement.
    db.execute(f"DELETE FROM trees WHERE name = '{name}'")
    # sql-schema: the alias resolves, the qualified column does not.
    db.query_one("SELECT t.nope FROM trees AS t")
