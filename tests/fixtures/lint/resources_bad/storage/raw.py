import sqlite3
from contextlib import closing


def tally(path):
    connection = sqlite3.connect(path)
    return connection.execute("SELECT count(*) FROM nodes").fetchone()[0]


def peek(path):
    return open(path).read()


def managed_read(path):
    with open(path) as handle:
        return handle.read()


def managed_connect(path):
    with closing(sqlite3.connect(path)) as connection:
        return connection.execute("SELECT 1").fetchone()


class Owner:
    def __init__(self, path):
        self.connection = sqlite3.connect(path)

    def close(self):
        self.connection.close()
