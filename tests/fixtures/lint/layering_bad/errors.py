class CrimsonError(Exception):
    pass
