import sqlite3  # a read path reaching for the driver directly


def rows(connection):
    return connection.execute("SELECT 1").fetchall()
