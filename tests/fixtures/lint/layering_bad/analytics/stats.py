from repro.storage.loader import DataLoader


def reload(store, path):
    return DataLoader(store).load_newick_file(path)
