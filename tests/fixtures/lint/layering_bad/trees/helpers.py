from repro.cli.main import build_parser


def usage():
    return build_parser().format_usage()
