import sqlite3


def direct(path):
    # Bypasses CrimsonDatabase entirely.
    return sqlite3.connect(path)
