import sqlite3


def connect_unguarded(path):
    return sqlite3.connect(path, check_same_thread=False)
