import threading


class HandleCache:
    def __init__(self, pool):
        self._reader = pool.checkout()


class Deadlocker:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def forward(self):
        with self._a:
            with self._b:
                pass

    def backward(self):
        with self._b:
            with self._a:
                pass


class Reacquire:
    def __init__(self):
        self._guard = threading.Lock()

    def outer(self):
        with self._guard:
            self.inner()

    def inner(self):
        with self._guard:
            pass
