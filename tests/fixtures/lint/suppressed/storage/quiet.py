import sqlite3  # crimson: allow[layering-sqlite3] fixture proving suppressions work


def silent(path):
    return sqlite3.connect(path)  # crimson: allow[layering-sqlite3, resources-managed] both rules quieted here
