from dataclasses import dataclass


@dataclass(frozen=True)
class Packet:
    kind: str
    size: int
    flags: int
