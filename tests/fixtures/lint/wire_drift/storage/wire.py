"""Codec with field drift: the encoder forgets ``flags`` and invents
``extra``; the decoder never reads ``flags`` and never passes it to
the constructor; ``encode_orphan`` has no matching decoder."""

from typing import Any, Mapping

from storage.api import Packet


def encode_packet(packet: Packet) -> dict:
    return {"kind": packet.kind, "size": packet.size, "extra": 1}


def decode_packet(payload: Mapping[str, Any]) -> Packet:
    return Packet(kind=payload["kind"], size=payload["size"])


def encode_orphan(x) -> dict:
    return {"a": 1}
