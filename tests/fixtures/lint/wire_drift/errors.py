"""Error classes with broken wire-details contracts.

``DriftError`` defines ``wire_details`` without ``apply_wire_details``
and cannot be rebuilt from a bare message (required ``code`` kwarg);
``HalfError`` has the opposite one-sided hook.
"""


class CrimsonError(Exception):
    pass


class DriftError(CrimsonError):
    def __init__(self, message, *, code):
        super().__init__(message)
        self.code = code

    def wire_details(self):
        return {"code": self.code, "hint": "x"}


class HalfError(CrimsonError):
    def apply_wire_details(self, details):
        self.extra = details.get("extra")
