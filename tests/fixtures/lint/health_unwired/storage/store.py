class CrimsonStore:
    def analyze(self, request):
        assert request.operation == "compare"
        return None

    def _execute(self, handle, request):
        if request.operation == "lca":
            return None
        raise QueryError(request.operation)
