"""Mini session API with one deliberate gap: the ``health`` verb is
declared in the session protocol, the VERBS table, and LocalSession —
but never wired through the server dispatch, RemoteSession, or the
CLI, the exact half-wiring the monitoring PR could have shipped with.
Everything else (including ``stats``) is fully wired, so the rule must
flag exactly those three surfaces by name."""

OPERATIONS = ("lca",)
ANALYTICS_OPERATIONS = ("compare",)


class QueryRequest:
    @classmethod
    def lca(cls, tree, *taxa):
        return cls(operation="lca", tree=tree, taxa=taxa)


class AnalyticsRequest:
    @classmethod
    def compare(cls, a, b):
        return cls(operation="compare", trees=(a, b))


class StatsRequest:
    pass


class CrimsonSession:
    def query(self, request): ...

    def analyze(self, request): ...

    def compare(self, a, b): ...

    def list_trees(self): ...

    def describe(self, name): ...

    def verify(self, tree=None): ...

    def ping(self): ...

    def estimate(self, request): ...

    def stats(self, request=None): ...

    def health(self): ...

    def close(self): ...


class AnalyticsVerbs:
    def compare(self, a, b):
        return self.analyze(AnalyticsRequest.compare(a, b))


class LocalSession(AnalyticsVerbs):
    def query(self, request): ...

    def analyze(self, request): ...

    def list_trees(self): ...

    def describe(self, name): ...

    def verify(self, tree=None): ...

    def ping(self): ...

    def estimate(self, request): ...

    def stats(self, request=None): ...

    def health(self): ...

    def close(self): ...
