def build_parser(commands):
    commands.add_parser("lca")
    commands.add_parser("compare")
    commands.add_parser("list")
    commands.add_parser("info")
    commands.add_parser("verify")
    commands.add_parser("ping")
    commands.add_parser("estimate")
    commands.add_parser("stats")
