VERBS = (
    "query", "analyze", "list_trees", "describe", "verify", "ping",
    "estimate", "stats", "health",
)
