class RemoteSession(AnalyticsVerbs):
    def _call(self, verb, payload=None): ...

    def query(self, request):
        return self._call("query", {})

    def analyze(self, request):
        return self._call("analyze", {})

    def estimate(self, request):
        return self._call("estimate", {})

    def list_trees(self):
        return self._call("list_trees")

    def describe(self, name):
        return self._call("describe", {"name": name})

    def verify(self, tree=None):
        return self._call("verify", {"tree": tree})

    def ping(self):
        return self._call("ping")

    def stats(self, request=None):
        return self._call("stats", {})

    def close(self): ...
