class CrimsonServer:
    def dispatch(self, envelope):
        verb = envelope["verb"]
        if verb == "ping":
            return {}
        if verb == "query":
            return {}
        if verb == "analyze":
            return {}
        if verb == "list_trees":
            return []
        if verb == "describe":
            return {}
        if verb == "estimate":
            return {}
        if verb == "stats":
            return {}
        assert verb == "verify"
        return []
