"""Mini session API with two deliberate gaps: the ``frontier``
operation is declared in OPERATIONS but has no constructor, no store
branch, and no CLI verb; the ``estimate`` verb (added the way PR 7
added pre-flight estimation) is wired through the session protocol,
the VERBS table, the server dispatch, and LocalSession — but not
through RemoteSession or the CLI, the exact half-wiring the rule must
name."""

OPERATIONS = ("lca", "frontier")
ANALYTICS_OPERATIONS = ("compare",)


class QueryRequest:
    @classmethod
    def lca(cls, tree, *taxa):
        return cls(operation="lca", tree=tree, taxa=taxa)


class AnalyticsRequest:
    @classmethod
    def compare(cls, a, b):
        return cls(operation="compare", trees=(a, b))


class CrimsonSession:
    def query(self, request): ...

    def analyze(self, request): ...

    def compare(self, a, b): ...

    def list_trees(self): ...

    def describe(self, name): ...

    def verify(self, tree=None): ...

    def ping(self): ...

    def estimate(self, request): ...

    def close(self): ...


class AnalyticsVerbs:
    def compare(self, a, b):
        return self.analyze(AnalyticsRequest.compare(a, b))


class LocalSession(AnalyticsVerbs):
    def query(self, request): ...

    def analyze(self, request): ...

    def list_trees(self): ...

    def describe(self, name): ...

    def verify(self, tree=None): ...

    def ping(self): ...

    def estimate(self, request): ...

    def close(self): ...
