"""Bootstrap calibration against the gold standard.

A capability the gold-standard methodology uniquely enables: because the
*true* projected tree is known, bootstrap support values can be checked
for calibration — do well-supported clades tend to be true?  This
example samples species from a stored gold standard, runs a Felsenstein
bootstrap on the sample's sequences under Neighbor-Joining, and reports
support on true versus false clades.

Run with::

    python examples/bootstrap_support.py
"""

from __future__ import annotations

import numpy as np

from repro.benchmark.bootstrap import bootstrap_support, support_versus_truth
from repro.benchmark.manager import ALL_ALGORITHMS
from repro.benchmark.metrics import clusters, normalized_rf
from repro.benchmark.sampling import random_sample_stored
from repro.cli.render import render_ascii
from repro.simulation.birth_death import birth_death_tree
from repro.simulation.models import tn93
from repro.simulation.rates import SiteRates
from repro.simulation.seqgen import evolve_sequences
from repro.storage.database import CrimsonDatabase
from repro.storage.loader import DataLoader
from repro.storage.projection import project_stored
from repro.storage.species_repository import SpeciesRepository

N_SPECIES = 200
SEQ_LENGTH = 600
SAMPLE_SIZE = 12
REPLICATES = 100


def main() -> None:
    rng = np.random.default_rng(85)

    print(f"building a {N_SPECIES}-species gold standard (TN93 + Γ rates) ...")
    gold = birth_death_tree(N_SPECIES, 1.0, 0.25, rng=rng)
    rates = SiteRates(SEQ_LENGTH, rng, alpha=0.6)
    sequences = evolve_sequences(
        gold, tn93(2.0, 4.0), SEQ_LENGTH, rng=rng, site_rates=rates, scale=0.2
    )
    db = CrimsonDatabase()
    handle = DataLoader(db).load_tree(gold, name="gold", sequences=sequences)

    print(f"sampling {SAMPLE_SIZE} species and projecting the true subtree ...")
    sample = random_sample_stored(handle, SAMPLE_SIZE, rng)
    truth = project_stored(handle, sample)
    print(render_ascii(truth, show_lengths=False))

    print(f"\nrunning a {REPLICATES}-replicate NJ bootstrap ...")
    species = SpeciesRepository(db)
    sample_sequences = species.sequences_for(handle, sample)
    result = bootstrap_support(
        sample_sequences,
        ALL_ALGORITHMS["nj-jc69"],
        n_replicates=REPLICATES,
        rng=rng,
    )

    print("\nmajority-rule consensus of the replicates:")
    print(render_ascii(result.consensus, show_lengths=False))
    print(f"consensus vs truth: nRF = {normalized_rf(truth, result.consensus):.3f}")

    true_clusters = clusters(truth)
    print("\nclade support (● = clade is true in the gold standard):")
    for cluster, support in sorted(
        result.support.items(), key=lambda item: -item[1]
    ):
        marker = "●" if cluster in true_clusters else "○"
        print(f"  {marker} {support * 100:5.1f}%  {{{', '.join(sorted(cluster))}}}")

    summary = support_versus_truth(result, truth)
    print(
        f"\ncalibration: mean support on true clades "
        f"{summary['mean_support_true'] * 100:.1f}%, on false clades "
        f"{summary['mean_support_false'] * 100:.1f}%; "
        f"true-clade recall {summary['true_cluster_recall'] * 100:.1f}%"
    )
    db.close()


if __name__ == "__main__":
    main()
