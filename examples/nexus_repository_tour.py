"""Repository tour: NEXUS loading, species data, history, visualization.

Walks the paper's §3 demonstration script: load a NEXUS file with
species data, append more data to an existing tree, run and recall
queries through the Query Repository, and export results in every
supported visualization format (ASCII dendrogram, phylogram, NEXUS,
Walrus-style JSON).

Run with::

    python examples/nexus_repository_tour.py
"""

from __future__ import annotations

from repro.cli.render import render_ascii, render_phylogram
from repro.cli.walrus import to_walrus_json
from repro.storage.database import CrimsonDatabase
from repro.storage.loader import DataLoader
from repro.storage.query_repository import QueryRepository
from repro.storage.species_repository import SpeciesRepository
from repro.trees.nexus import NexusDocument, write_nexus

PRIMATES_NEXUS = """#NEXUS
BEGIN TAXA;
    DIMENSIONS NTAX=5;
    TAXLABELS Homo Pan Gorilla Pongo Hylobates;
END;
BEGIN CHARACTERS;
    DIMENSIONS NTAX=5 NCHAR=20;
    FORMAT DATATYPE=DNA MISSING=? GAP=-;
    MATRIX
        Homo      AAGCTTCACCGGCGCAGTCA
        Pan       AAGCTTCACCGGCGCAATTA
        Gorilla   AAGCTTCACCGGCGCAGTTG
        Pongo     AAGCTTCACCGGCGCAACCA
        Hylobates AAGCTTTACAGGTGCAACCG
    ;
END;
BEGIN TREES;
    TREE primates = ((((Homo:0.21,Pan:0.21):0.28,Gorilla:0.31):0.44,
                      Pongo:0.69):0.47,Hylobates:1.00);
END;
"""


def main() -> None:
    db = CrimsonDatabase()
    loader = DataLoader(db, report=lambda message: print(f"  [loader] {message}"))

    print("-- loading a NEXUS document with tree + character matrix --")
    (handle,) = loader.load_nexus_text(PRIMATES_NEXUS)

    species = SpeciesRepository(db)
    print(f"\n  species rows: {species.count(handle)}")
    print(f"  Homo sequence: {species.sequence_of(handle, 'Homo')}")

    print("\n-- recording queries in the Query Repository --")
    history = QueryRepository(db)
    history.register_operation(
        "lca", lambda a, b: handle.lca(a, b).name or "(anonymous interior)"
    )
    history.register_operation(
        "frontier", lambda time: [r.name for r in handle.time_frontier(time)]
    )
    print("  lca(Homo, Gorilla) =", history.run_recorded(
        "lca", {"a": "Homo", "b": "Gorilla"}, tree_name="primates"))
    print("  frontier(0.5)      =", history.run_recorded(
        "frontier", {"time": 0.5}, tree_name="primates"))

    print("\n  recorded history (newest first):")
    for entry in history.recent():
        print(
            f"    #{entry.query_id} {entry.operation} {entry.params} "
            f"({entry.duration_ms:.2f} ms)"
        )

    print("\n  re-running query #1 from history:")
    print("  ->", history.rerun(1))

    print("\n-- visualizing the stored tree --")
    tree = handle.fetch_tree()
    print("\nASCII dendrogram:")
    print(render_ascii(tree))
    print("\ndistance-scaled phylogram:")
    print(render_phylogram(tree, width=40))
    print("\nNEXUS export:")
    print(write_nexus(NexusDocument(taxa=tree.leaf_names(),
                                    trees=[("primates", tree)])))
    walrus = to_walrus_json(tree, indent=None)
    print(f"Walrus-style JSON export: {len(walrus)} bytes "
          f"({tree.size()} nodes, {tree.size() - 1} links)")
    db.close()


if __name__ == "__main__":
    main()
