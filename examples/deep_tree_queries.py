"""Why Crimson exists: structure queries on very deep trees.

The paper's motivation (§1): simulation trees average depth > 1000 while
XML documents average depth 4, and plain Dewey labels grow with depth.
This example builds a deliberately deep caterpillar tree and a balanced
control, then contrasts:

* plain Dewey label sizes versus the f-bounded layered labels,
* naive / plain-Dewey / layered LCA strategies on the same queries,
* clade retrieval through pre-order intervals in the relational store.

Run with::

    python examples/deep_tree_queries.py
"""

from __future__ import annotations

import time

from repro.core.dewey import DeweyIndex
from repro.core.hindex import HierarchicalIndex
from repro.core.lca import LcaService
from repro.storage.database import CrimsonDatabase
from repro.storage.tree_repository import TreeRepository
from repro.trees.build import balanced, caterpillar

DEPTH = 5000
LABEL_BOUND = 8


def main() -> None:
    print(f"building a caterpillar tree {DEPTH} levels deep ...")
    deep = caterpillar(DEPTH)
    shallow = balanced(12)  # 4096 leaves, depth 12: the 'XML-like' control
    print(
        f"  deep tree:    {deep.size()} nodes, depth {deep.max_depth()}\n"
        f"  control tree: {shallow.size()} nodes, depth {shallow.max_depth()}"
    )

    print("\n-- label storage cost (experiment E3's headline) --")
    for name, tree in (("deep", deep), ("control", shallow)):
        plain = DeweyIndex(tree)
        layered = HierarchicalIndex(tree, LABEL_BOUND)
        print(
            f"  {name:<8} plain Dewey: max {plain.max_label_length():>5} "
            f"components, {plain.total_label_bytes():>10} bytes | "
            f"layered(f={LABEL_BOUND}): max {layered.max_label_length()} "
            f"components, {layered.total_label_bytes():>9} bytes, "
            f"{layered.n_layers} layers"
        )

    print("\n-- LCA strategy comparison on the deep tree --")
    leaves = list(deep.root.leaves())
    pairs = [
        (leaves[i], leaves[-(i + 1)]) for i in range(0, len(leaves) // 2, 50)
    ]
    for strategy in ("naive", "dewey", "layered"):
        service = LcaService(deep, strategy, f=LABEL_BOUND)
        start = time.perf_counter()
        for a, b in pairs:
            service.lca(a, b)
        elapsed = (time.perf_counter() - start) * 1000
        print(f"  {strategy:<8} {len(pairs)} queries in {elapsed:8.2f} ms")

    print("\n-- the same tree, queried relationally --")
    db = CrimsonDatabase()
    handle = TreeRepository(db).store_tree(deep, name="deep", f=LABEL_BOUND)
    info = handle.info
    print(
        f"  stored: {info.n_nodes} node rows, {info.n_blocks} blocks, "
        f"{info.n_layers} layers"
    )
    start = time.perf_counter()
    row = handle.lca("t1", f"t{DEPTH}")
    elapsed = (time.perf_counter() - start) * 1000
    print(f"  SQL LCA(t1, t{DEPTH}) -> depth {row.depth} in {elapsed:.2f} ms")

    anchor = handle.node_by_name(f"t{DEPTH // 2}")
    start = time.perf_counter()
    clade_size = len(handle.clade([f"t{DEPTH // 2}", f"t{DEPTH // 2 + 1}"]))
    elapsed = (time.perf_counter() - start) * 1000
    print(
        f"  clade of two mid-tree leaves: {clade_size} nodes via one "
        f"pre-order BETWEEN in {elapsed:.2f} ms"
    )
    db.close()


if __name__ == "__main__":
    main()
