"""The CIPRes workflow: build a gold standard and benchmark algorithms.

This is the paper's headline scenario (abstract, §2.2).  A birth–death
"gold standard" tree is generated, sequences are evolved along it under
HKY85 with gamma rate heterogeneity, everything is loaded into a Crimson
store, and the Benchmark Manager evaluates four reconstruction methods
across increasing sample sizes — printing the accuracy table the paper's
users would read.

Run with::

    python examples/gold_standard_benchmark.py
"""

from __future__ import annotations

import numpy as np

from repro.benchmark.manager import (
    ALL_ALGORITHMS,
    BenchmarkManager,
    format_sweep_table,
)
from repro.simulation.birth_death import birth_death_tree
from repro.simulation.models import hky85
from repro.simulation.rates import SiteRates
from repro.simulation.seqgen import evolve_sequences
from repro.storage.database import CrimsonDatabase
from repro.storage.loader import DataLoader

N_SPECIES = 300
SEQ_LENGTH = 500
SAMPLE_SIZES = (8, 16, 32, 64)
TRIALS = 3


def main() -> None:
    rng = np.random.default_rng(2006)

    print(f"simulating a {N_SPECIES}-species birth-death gold standard ...")
    gold = birth_death_tree(N_SPECIES, birth_rate=1.0, death_rate=0.3, rng=rng)
    print(
        f"  {gold.size()} nodes, max depth {gold.max_depth()}, "
        f"avg leaf depth {gold.avg_leaf_depth():.1f}"
    )

    print(f"evolving {SEQ_LENGTH}-site sequences under HKY85+Gamma ...")
    rates = SiteRates(SEQ_LENGTH, rng, alpha=0.7, proportion_invariant=0.1)
    sequences = evolve_sequences(
        gold, hky85(kappa=2.5), SEQ_LENGTH, rng=rng, site_rates=rates, scale=0.15
    )

    db = CrimsonDatabase()
    DataLoader(db, report=lambda msg: print(f"  {msg}")).load_tree(
        gold, name="gold", sequences=sequences
    )

    algorithms = {
        name: ALL_ALGORITHMS[name]
        for name in ("nj-jc69", "nj-k2p", "upgma-jc69", "random")
    }
    manager = BenchmarkManager(db, algorithms=algorithms)

    print(
        f"\nbenchmarking {sorted(algorithms)} on random samples "
        f"of {list(SAMPLE_SIZES)} species, {TRIALS} trials each:\n"
    )
    rows = manager.run_sweep("gold", SAMPLE_SIZES, n_trials=TRIALS, rng=rng)
    print(format_sweep_table(rows))

    print("\nreading the table: lower nRF is better; 'random' is the")
    print("no-signal floor; distance methods should sit well below it and")
    print("drift upward as samples grow (more splits to get right).")

    print("\nmost recent benchmark history entries:")
    for entry in manager.history.recent(limit=3):
        print(f"  #{entry.query_id} {entry.operation} {entry.result_summary}")

    db.close()


if __name__ == "__main__":
    main()
