"""Quickstart: the Crimson paper's own worked example, end to end.

Builds the Figure-1 tree, stores it in an in-memory Crimson database
with the f=2 layered index of Figure 4, and runs every query the paper
walks through: Dewey labels, LCA across blocks, time sampling, tree
projection, and pattern matching.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.benchmark.sampling import sample_with_time_stored
from repro.cli.render import render_ascii
from repro.core.dewey import DeweyIndex, label_to_string
from repro.core.pattern import match_pattern
from repro.core.projection import project_tree
from repro.storage.store import CrimsonStore
from repro.trees.build import sample_tree
from repro.trees.newick import parse_newick


def main() -> None:
    tree = sample_tree()
    print("The paper's Figure-1 tree:")
    print(render_ascii(tree))

    print("\n-- Dewey labels (paper §2.1) --")
    dewey = DeweyIndex(tree)
    for name in ("Lla", "Spy", "x"):
        label = label_to_string(dewey.label(tree.find(name)))
        print(f"  {name}: ({label})")

    print("\n-- Store in the relational repository with f=2 (Figure 4) --")
    # In-memory; pass a path to persist, readers=N to pool connections.
    store = CrimsonStore.open()
    handle = store.trees.store_tree(tree, f=2)
    info = handle.info
    print(
        f"  stored {info.name!r}: {info.n_nodes} nodes, "
        f"{info.n_blocks} index blocks over {info.n_layers} layers"
    )

    print("\n-- LCA through the layered index, over SQL --")
    print(f"  LCA(Lla, Spy) = {handle.lca('Lla', 'Spy').name}   (same block)")
    print(f"  LCA(Lla, Syn) = {handle.lca('Lla', 'Syn').name}   (via layer 1)")

    print("\n-- Sampling with respect to evolutionary time 1.0 (§2.2) --")
    frontier = [row.name for row in handle.time_frontier(1.0)]
    print(f"  frontier nodes: {frontier}")
    rng = np.random.default_rng(0)
    sample = sample_with_time_stored(handle, 1.0, 4, rng)
    print(f"  stratified sample of 4: {sorted(sample)}")

    print("\n-- Tree projection over {Bha, Lla, Syn} (Figure 2) --")
    projection = project_tree(handle.fetch_tree(), ["Bha", "Lla", "Syn"])
    print(render_ascii(projection))
    print(f"  as Newick: {projection.to_newick()}")

    print("\n-- Tree pattern match (§2.2) --")
    pattern = parse_newick("(Syn:2.5,(Lla:1.5,Bha:1.5):0.75);")
    result = match_pattern(tree, pattern, compare_lengths=True)
    print(f"  Figure-2 pattern matches Figure 1: {result.matched}")
    swapped = parse_newick("(Syn:2.5,(Bha:1.5,Lla:1.5):0.75);")
    result = match_pattern(tree, swapped, compare_lengths=True)
    print(f"  ... with Bha and Lla exchanged:    {result.matched}")

    store.close()


if __name__ == "__main__":
    main()
