"""One query interface, local or remote: the CrimsonSession protocol.

Builds a gold-standard store, serves it over TCP from a background
thread (exactly what ``crimson serve`` does in its own process), and
runs the *same* function — written only against the session protocol —
first on a :class:`LocalSession`, then on a :class:`RemoteSession`
speaking JSON lines to the live server.  The answers are identical;
only the transport differs.

Run with::

    python examples/remote_query_service.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.server import CrimsonServer, RemoteSession
from repro.storage.api import CrimsonSession, QueryRequest
from repro.storage.store import CrimsonStore
from repro.trees.build import caterpillar
from repro.trees.newick import write_newick

DEPTH = 64


def survey(session: CrimsonSession) -> list[str]:
    """A client workload that cannot tell local from remote."""
    lines = []
    info = session.ping()
    lines.append(
        f"connected over {info['transport']!r} "
        f"(protocol {info['protocol']}, {info['trees']} tree(s))"
    )
    for entry in session.list_trees():
        lines.append(f"catalogue: {entry.name} — {entry.n_nodes} nodes")
    lca = session.query(QueryRequest.lca("gold", "t1", f"t{DEPTH}"))
    lines.append(f"LCA(t1, t{DEPTH}) = node {lca.node.node_id}")
    batch = session.query(
        QueryRequest.lca_batch("gold", [("t1", "t8"), ("t3", f"t{DEPTH}")])
    )
    lines.append(f"batched LCAs: {[row.node_id for row in batch.nodes]}")
    projection = session.query(
        QueryRequest.project("gold", "t1", "t8", f"t{DEPTH}")
    )
    lines.append(f"projection: {write_newick(projection.projection)}")
    reports = session.verify("gold")
    lines.append(f"verify: {'; '.join(str(report) for report in reports)}")
    return lines


def main() -> None:
    with tempfile.TemporaryDirectory() as tmpdir:
        path = str(Path(tmpdir) / "service.db")
        with CrimsonStore.open(path, readers=4) as store:
            store.load_tree(caterpillar(DEPTH), name="gold", f=8)

            print("-- LocalSession (in-process) --")
            local_lines = survey(store.session())
            for line in local_lines:
                print(f"  {line}")

            # The server half of `crimson serve`, embedded on a thread.
            with CrimsonServer(store, port=0) as server:
                host, port = server.address
                print(f"\n-- RemoteSession (TCP {host}:{port}) --")
                with RemoteSession(host, port) as session:
                    remote_lines = survey(session)
                for line in remote_lines:
                    print(f"  {line}")

    same = local_lines[1:] == remote_lines[1:]
    print(f"\nidentical answers across transports: {same}")


if __name__ == "__main__":
    main()
